// Tests for the Figure-2 schedulability test (AdmissionController).
#include <gtest/gtest.h>

#include "sched/admission.hpp"

namespace rtdls::sched {
namespace {

cluster::ClusterParams paper_params() {
  return {.node_count = 16, .cms = 1.0, .cps = 100.0};
}

workload::Task make_task(cluster::TaskId id, double arrival, double sigma, double deadline,
                         std::size_t user_nodes = 0) {
  workload::Task task;
  task.id = id;
  task.spec = {arrival, sigma, deadline};
  task.user_nodes = user_nodes;
  return task;
}

std::vector<cluster::Time> idle_cluster() { return std::vector<cluster::Time>(16, 0.0); }

TEST(Admission, NullRuleRejectedAtConstruction) {
  EXPECT_THROW(AdmissionController(Policy::kEdf, nullptr), std::invalid_argument);
}

TEST(Admission, SingleTaskAccepted) {
  const auto rule = make_dlt_iit_rule();
  AdmissionController controller(Policy::kEdf, rule.get());
  const workload::Task task = make_task(1, 0.0, 200.0, 3000.0);
  const AdmissionOutcome outcome =
      controller.test(&task, {}, paper_params(), idle_cluster(), 0.0);
  ASSERT_TRUE(outcome.accepted);
  ASSERT_EQ(outcome.schedule.size(), 1u);
  EXPECT_EQ(outcome.schedule[0].task->id, 1u);
  EXPECT_LE(outcome.schedule[0].plan.est_completion, 3000.0 + 1e-9);
}

TEST(Admission, ImpossibleTaskRejectedWithReason) {
  const auto rule = make_dlt_iit_rule();
  AdmissionController controller(Policy::kEdf, rule.get());
  const workload::Task task = make_task(1, 0.0, 200.0, 150.0);  // < sigma*Cms
  const AdmissionOutcome outcome =
      controller.test(&task, {}, paper_params(), idle_cluster(), 0.0);
  EXPECT_FALSE(outcome.accepted);
  EXPECT_EQ(outcome.reason, dlt::Infeasibility::kTransmissionTooLong);
  EXPECT_EQ(outcome.blocking_task, 1u);
  EXPECT_TRUE(outcome.schedule.empty());
}

TEST(Admission, FreeTimePropagationSerializesBigTasks) {
  // Two cluster-filling tasks: the second must be planned after the first's
  // estimated completion.
  const auto rule = make_dlt_iit_rule();
  AdmissionController controller(Policy::kFifo, rule.get());
  const workload::Task first = make_task(1, 0.0, 200.0, 1500.0);   // needs ~16 nodes
  const workload::Task second = make_task(2, 0.0, 200.0, 30000.0);
  const AdmissionOutcome outcome =
      controller.test(&second, {&first}, paper_params(), idle_cluster(), 0.0);
  ASSERT_TRUE(outcome.accepted);
  ASSERT_EQ(outcome.schedule.size(), 2u);
  EXPECT_EQ(outcome.schedule[0].task->id, 1u);
  const sched::TaskPlan& plan1 = outcome.schedule[0].plan;
  const sched::TaskPlan& plan2 = outcome.schedule[1].plan;
  // Task 2's earliest node availability is task 1's release of some node.
  EXPECT_GE(plan2.available.front() + 1e-9,
            plan1.nodes == 16 ? plan1.est_completion : 0.0);
}

TEST(Admission, EdfReordersQueue) {
  const auto rule = make_dlt_iit_rule();
  AdmissionController controller(Policy::kEdf, rule.get());
  // Waiting task with a LOOSE deadline; new task with a TIGHT one. Under
  // EDF the new task is planned first even though it arrived later.
  const workload::Task waiting = make_task(1, 0.0, 200.0, 50000.0);
  const workload::Task urgent = make_task(2, 10.0, 200.0, 2000.0);
  const AdmissionOutcome outcome =
      controller.test(&urgent, {&waiting}, paper_params(), idle_cluster(), 10.0);
  ASSERT_TRUE(outcome.accepted);
  ASSERT_EQ(outcome.schedule.size(), 2u);
  EXPECT_EQ(outcome.schedule[0].task->id, 2u);  // urgent first
  EXPECT_EQ(outcome.schedule[1].task->id, 1u);
}

TEST(Admission, FifoKeepsArrivalOrder) {
  const auto rule = make_dlt_iit_rule();
  AdmissionController controller(Policy::kFifo, rule.get());
  const workload::Task waiting = make_task(1, 0.0, 200.0, 50000.0);
  const workload::Task urgent = make_task(2, 10.0, 200.0, 2500.0);
  const AdmissionOutcome outcome =
      controller.test(&urgent, {&waiting}, paper_params(), idle_cluster(), 10.0);
  ASSERT_TRUE(outcome.accepted);
  EXPECT_EQ(outcome.schedule[0].task->id, 1u);
}

TEST(Admission, NewTaskRejectedWhenItWouldBreakAdmittedTask) {
  const auto rule = make_dlt_iit_rule();
  AdmissionController controller(Policy::kEdf, rule.get());
  // Admitted task with a deadline that only just works on the idle cluster.
  const workload::Task admitted = make_task(1, 0.0, 200.0, 1400.0);  // ~E(200,16)
  const AdmissionOutcome alone =
      controller.test(&admitted, {}, paper_params(), idle_cluster(), 0.0);
  ASSERT_TRUE(alone.accepted);

  // A new, even more urgent task that would displace it under EDF.
  const workload::Task intruder = make_task(2, 0.0, 200.0, 1390.0);
  const AdmissionOutcome outcome =
      controller.test(&intruder, {&admitted}, paper_params(), idle_cluster(), 0.0);
  EXPECT_FALSE(outcome.accepted);
  // The victim is the previously admitted task, planned after the intruder.
  EXPECT_EQ(outcome.blocking_task, 1u);
}

TEST(Admission, ValidateQueueWithoutNewTask) {
  const auto rule = make_dlt_iit_rule();
  AdmissionController controller(Policy::kEdf, rule.get());
  const workload::Task a = make_task(1, 0.0, 200.0, 4000.0);
  const workload::Task b = make_task(2, 0.0, 200.0, 9000.0);
  const AdmissionOutcome outcome =
      controller.test(nullptr, {&a, &b}, paper_params(), idle_cluster(), 0.0);
  ASSERT_TRUE(outcome.accepted);
  EXPECT_EQ(outcome.schedule.size(), 2u);
}

TEST(Admission, EmptyTestTriviallyAccepts) {
  const auto rule = make_dlt_iit_rule();
  AdmissionController controller(Policy::kEdf, rule.get());
  const AdmissionOutcome outcome =
      controller.test(nullptr, {}, paper_params(), idle_cluster(), 0.0);
  EXPECT_TRUE(outcome.accepted);
  EXPECT_TRUE(outcome.schedule.empty());
}

TEST(Admission, FreeTimesFlooredAtNow) {
  const auto rule = make_dlt_iit_rule();
  AdmissionController controller(Policy::kEdf, rule.get());
  // Stale free times in the past must not let a task start before `now`.
  std::vector<cluster::Time> stale(16, 0.0);
  const workload::Task task = make_task(1, 500.0, 200.0, 3000.0);
  const AdmissionOutcome outcome =
      controller.test(&task, {}, paper_params(), stale, 500.0);
  ASSERT_TRUE(outcome.accepted);
  EXPECT_GE(outcome.schedule[0].plan.available.front(), 500.0);
}

TEST(Admission, MismatchedFreeTimesThrow) {
  const auto rule = make_dlt_iit_rule();
  AdmissionController controller(Policy::kEdf, rule.get());
  const workload::Task task = make_task(1, 0.0, 200.0, 3000.0);
  std::vector<cluster::Time> wrong(4, 0.0);
  EXPECT_THROW(controller.test(&task, {}, paper_params(), wrong, 0.0),
               std::invalid_argument);
}

TEST(Admission, NoNodeOversubscription) {
  // Across the accepted schedule, reconstruct per-slot usage: each planning
  // step consumes the k earliest free slots; verify the released times are
  // consistent (every reservation starts at or after the slot's free time).
  const auto rule = make_user_split_rule();
  AdmissionController controller(Policy::kFifo, rule.get());
  const workload::Task a = make_task(1, 0.0, 200.0, 30000.0, 10);
  const workload::Task b = make_task(2, 0.0, 200.0, 30000.0, 10);
  const workload::Task c = make_task(3, 0.0, 200.0, 30000.0, 12);
  const AdmissionOutcome outcome =
      controller.test(&c, {&a, &b}, paper_params(), idle_cluster(), 0.0);
  ASSERT_TRUE(outcome.accepted);

  std::vector<cluster::Time> slots(16, 0.0);
  for (const ScheduledTask& scheduled : outcome.schedule) {
    std::sort(slots.begin(), slots.end());
    for (std::size_t i = 0; i < scheduled.plan.nodes; ++i) {
      EXPECT_GE(scheduled.plan.reserve_from[i] + 1e-9, slots[i])
          << "task " << scheduled.task->id << " slot " << i;
      slots[i] = scheduled.plan.node_release[i];
    }
  }
}

}  // namespace
}  // namespace rtdls::sched
