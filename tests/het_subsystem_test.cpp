// Heterogeneous-cluster subsystem tests.
//
// The two pillars:
//  1. Homogeneous equivalence: attaching an all-equal SpeedProfile (values
//     == the scalar Cps) must reproduce the seed homogeneous schedules
//     bitwise - counters, reservations, and rollouts - with the admission
//     cross-check armed. This is the guarantee that the het lift cannot
//     perturb every existing figure.
//  2. Genuine heterogeneity: the generalized Eq.-1 construction keeps the
//     Theorem-4 bound (est >= actual per node), the incremental admission
//     session stays bit-identical to the full Figure-2 test (cross-check
//     throws on any divergence), and every algorithm upholds the safety
//     invariants on heterogeneous hardware.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "cluster/speed_profile.hpp"
#include "dlt/het_model.hpp"
#include "sim/exec_model.hpp"
#include "sim/schedule_log.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace rtdls {
namespace {

using cluster::SpeedProfile;

void expect_entries_bitwise(const sim::ScheduleLog& a, const sim::ScheduleLog& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const sim::ScheduleEntry& x = a.entries()[i];
    const sim::ScheduleEntry& y = b.entries()[i];
    ASSERT_EQ(x.task, y.task) << "entry " << i;
    ASSERT_EQ(x.node, y.node) << "entry " << i;
    ASSERT_EQ(x.usable_from, y.usable_from) << "entry " << i;
    ASSERT_EQ(x.start, y.start) << "entry " << i;
    ASSERT_EQ(x.end, y.end) << "entry " << i;
    ASSERT_EQ(x.alpha, y.alpha) << "entry " << i;
    ASSERT_EQ(x.cps, y.cps) << "entry " << i;
    ASSERT_EQ(x.actual_finish, y.actual_finish) << "entry " << i;
  }
}

/// All-equal profile == scalar Cps => bit-identical schedules and metrics.
/// Parameterized over policy x rule at N=256 (large enough that ordering or
/// tie-break drift would surface immediately).
class HomogeneousEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(HomogeneousEquivalence, AllEqualProfileReproducesSeedSchedulesBitwise) {
  const std::string& algorithm = GetParam();
  workload::WorkloadParams params;
  params.cluster = {.node_count = 256, .cms = 1.0, .cps = 100.0};
  params.system_load = 0.7;
  params.dc_ratio = 8.0;  // deep waiting queues: the incremental hot path
  params.total_time = 20000.0;
  params.seed = 4242;
  const auto tasks = workload::generate_workload(params);

  sim::ScheduleLog reference_log;
  sim::SimulatorConfig reference;
  reference.params = params.cluster;
  reference.cross_check_admission = true;
  reference.schedule_log = &reference_log;
  const sim::SimMetrics expect =
      sim::simulate(reference, algorithm, tasks, params.total_time);

  sim::ScheduleLog profiled_log;
  sim::SimulatorConfig profiled = reference;
  profiled.params.speed_profile =
      std::make_shared<const SpeedProfile>(SpeedProfile::homogeneous(256, 100.0));
  ASSERT_FALSE(profiled.params.heterogeneous());  // the fast-path guarantee
  profiled.schedule_log = &profiled_log;
  const sim::SimMetrics got = sim::simulate(profiled, algorithm, tasks, params.total_time);

  ASSERT_EQ(got.arrivals, expect.arrivals);
  ASSERT_EQ(got.accepted, expect.accepted);
  ASSERT_EQ(got.rejected, expect.rejected);
  ASSERT_EQ(got.reject_reasons, expect.reject_reasons);
  ASSERT_EQ(got.deadline_misses, expect.deadline_misses);
  ASSERT_EQ(got.theorem4_violations, expect.theorem4_violations);
  ASSERT_EQ(got.busy_time, expect.busy_time);
  ASSERT_EQ(got.idle_gap_time, expect.idle_gap_time);
  ASSERT_EQ(got.response_time.mean(), expect.response_time.mean());
  ASSERT_EQ(got.deadline_slack.min(), expect.deadline_slack.min());
  expect_entries_bitwise(profiled_log, reference_log);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyByRule, HomogeneousEquivalence,
    ::testing::Values("EDF-DLT", "FIFO-DLT", "EDF-MR2", "FIFO-MR2", "EDF-OPR-MN-BF",
                      "FIFO-OPR-MN-BF"),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

/// Every algorithm on genuinely heterogeneous hardware: safety invariants
/// hold and (for non-calendar rules) the incremental session is asserted
/// bit-identical to the full Figure-2 test on every arrival.
class HetAlgorithm
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(HetAlgorithm, SafetyInvariantsOnHeterogeneousHardware) {
  const auto& [name, profile_key] = GetParam();
  workload::WorkloadParams params;
  params.cluster = {.node_count = 32, .cms = 1.0, .cps = 100.0};
  params.system_load = 0.8;
  params.total_time = 150000.0;
  params.seed = 99;
  const auto tasks = workload::generate_workload(params);

  sim::SimulatorConfig config;
  config.params = params.cluster;
  config.params.speed_profile = std::make_shared<const SpeedProfile>(
      cluster::parse_speed_profile(profile_key, 32, 100.0));
  ASSERT_TRUE(config.params.heterogeneous());
  config.cross_check_admission = true;
  const sim::SimMetrics metrics = sim::simulate(config, name, tasks, params.total_time);

  ASSERT_EQ(metrics.accepted + metrics.rejected, metrics.arrivals);
  ASSERT_EQ(metrics.deadline_misses, 0u);
  ASSERT_EQ(metrics.theorem4_violations, 0u);  // the generalized Theorem 4
  if (metrics.accepted > 0) {
    ASSERT_GE(metrics.deadline_slack.min(), -1e-6);
    ASSERT_GT(metrics.utilization(), 0.0);
    ASSERT_LT(metrics.utilization(), 1.1);
    ASSERT_GE(metrics.nodes_per_task.min(), 1.0);
    ASSERT_LE(metrics.nodes_per_task.max(), 32.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, HetAlgorithm,
    ::testing::Combine(::testing::Values("EDF-DLT", "FIFO-DLT", "EDF-DLT-Opt", "EDF-OPR-MN",
                                         "FIFO-OPR-MN", "EDF-OPR-AN", "EDF-UserSplit",
                                         "EDF-MR2", "EDF-MR4", "EDF-OPR-MN-BF"),
                       ::testing::Values("lognormal:0.5,3", "two_tier:40,160,0.5,1",
                                         "uniform:50,200,9")),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>& param_info) {
      std::string name = std::get<0>(param_info.param) + "_" +
                         std::get<1>(param_info.param).substr(
                             0, std::get<1>(param_info.param).find(':'));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(HetSubsystem, ActualReleasePolicyStaysSafePerSlot) {
  // kActual hands back each node's own unused tail; under heterogeneity the
  // pairing must stay per-slot (order statistics would free a still-busy
  // slow node). The invariants catch any such premature release.
  workload::WorkloadParams params;
  params.cluster = {.node_count = 24, .cms = 1.0, .cps = 100.0};
  params.system_load = 0.9;
  params.total_time = 120000.0;
  params.seed = 1234;
  const auto tasks = workload::generate_workload(params);

  for (const char* name : {"EDF-DLT", "EDF-MR2", "EDF-UserSplit"}) {
    sim::SimulatorConfig config;
    config.params = params.cluster;
    config.params.speed_profile = std::make_shared<const SpeedProfile>(
        SpeedProfile::log_normal(24, 100.0, 0.6, 21));
    config.release_policy = sim::ReleasePolicy::kActual;
    config.cross_check_admission = true;
    const sim::SimMetrics metrics = sim::simulate(config, name, tasks, params.total_time);
    ASSERT_EQ(metrics.theorem4_violations, 0u) << name;
    ASSERT_EQ(metrics.deadline_misses, 0u) << name;
    ASSERT_EQ(metrics.accepted + metrics.rejected, metrics.arrivals) << name;
  }
}

TEST(HetSubsystem, GeneralizedPartitionUpholdsTheorem4Bound) {
  // Direct check of the generalized Eq.-1 construction: on random
  // (availability, speed) sets, the exact rollout at actual speeds finishes
  // by r_n + E_hat, and the per-node bounds dominate the rollout.
  const cluster::ClusterParams params{.node_count = 8, .cms = 2.0, .cps = 120.0};
  const std::vector<cluster::Time> available{0.0, 3.0, 3.0, 10.0, 25.0, 60.0, 61.0, 200.0};
  const SpeedProfile profile = SpeedProfile::uniform(8, 40.0, 400.0, 17);
  const double sigma = 50.0;

  for (std::size_t n = 1; n <= 8; ++n) {
    std::vector<double> cps(profile.values().begin(), profile.values().begin() + n);
    dlt::HetPartition partition;
    dlt::build_het_partition_into(params, sigma, available, profile.values(), n, partition);

    double alpha_sum = 0.0;
    for (double a : partition.alpha) alpha_sum += a;
    EXPECT_NEAR(alpha_sum, 1.0, 1e-12) << n;
    EXPECT_LE(partition.execution_time, partition.homogeneous_time + 1e-9) << n;  // Eq. 9

    // Roll the partition out exactly as the simulator would.
    sched::TaskPlan plan;
    plan.nodes = n;
    plan.available = partition.available;
    plan.reserve_from = partition.available;
    plan.alpha = partition.alpha;
    plan.node_cps = cps;
    const sim::ActualTimeline timeline = sim::roll_out(params, sigma, plan);
    const cluster::Time est = partition.estimated_completion();
    EXPECT_LE(timeline.task_completion(), est + 1e-9) << n;

    const auto bounds = dlt::theorem4_completion_bounds(params, sigma, partition, cps);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LE(timeline.completion[i], bounds[i] + 1e-9) << n << ":" << i;
      EXPECT_LE(bounds[i], est + 1e-9) << n << ":" << i;
    }
  }
}

TEST(HetSubsystem, FasterProfileAdmitsNoFewerTasks) {
  // Sanity on the direction of the effect: halving every node's processing
  // cost (a uniformly faster cluster) cannot reject more of the same trace.
  workload::WorkloadParams params;
  params.cluster = {.node_count = 16, .cms = 1.0, .cps = 100.0};
  params.system_load = 1.0;
  params.total_time = 100000.0;
  params.seed = 5;
  const auto tasks = workload::generate_workload(params);

  sim::SimulatorConfig slow;
  slow.params = params.cluster;
  const sim::SimMetrics base = sim::simulate(slow, "EDF-DLT", tasks, params.total_time);

  sim::SimulatorConfig fast = slow;
  fast.params.speed_profile =
      std::make_shared<const SpeedProfile>(SpeedProfile::homogeneous(16, 50.0));
  ASSERT_TRUE(fast.params.heterogeneous());  // engages the het path
  const sim::SimMetrics quick = sim::simulate(fast, "EDF-DLT", tasks, params.total_time);
  EXPECT_LE(quick.rejected, base.rejected);
}

TEST(HetSubsystem, ScheduleLogRecordsPerNodeSpeedsAndFinishes) {
  workload::WorkloadParams params;
  params.cluster = {.node_count = 8, .cms = 1.0, .cps = 100.0};
  params.system_load = 0.6;
  params.total_time = 50000.0;
  params.seed = 77;
  const auto tasks = workload::generate_workload(params);

  sim::ScheduleLog log;
  sim::SimulatorConfig config;
  config.params = params.cluster;
  config.params.speed_profile = std::make_shared<const SpeedProfile>(
      SpeedProfile::two_tier(8, 50.0, 200.0, 0.5, 2));
  config.schedule_log = &log;
  sim::simulate(config, "EDF-DLT", tasks, params.total_time);

  ASSERT_GT(log.size(), 0u);
  for (const sim::ScheduleEntry& entry : log.entries()) {
    // The logged speed is the node's actual profile speed, and the actual
    // finish computed from it never exceeds the committed release.
    EXPECT_EQ(entry.cps, config.params.node_cps(entry.node));
    EXPECT_LE(entry.actual_finish, entry.end + 1e-6);
    EXPECT_GE(entry.actual_finish, entry.start);
  }
}

}  // namespace
}  // namespace rtdls
