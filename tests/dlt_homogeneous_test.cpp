// Tests for the homogeneous DLT results of [22] that this paper builds on:
// E(sigma, n), the geometric optimal partition, and their invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <tuple>

#include "dlt/homogeneous.hpp"

namespace rtdls::dlt {
namespace {

ClusterParams paper_params() { return {.node_count = 16, .cms = 1.0, .cps = 100.0}; }

TEST(Homogeneous, SingleNodeIsTransmitPlusCompute) {
  // n=1: E = sigma * (Cms + Cps), the whole load through one pipe.
  EXPECT_NEAR(homogeneous_execution_time(paper_params(), 200.0, 1), 200.0 * 101.0, 1e-9);
}

TEST(Homogeneous, MatchesClosedFormAtBaseline) {
  // Hand-evaluated (1-beta)/(1-beta^16) * sigma * (Cms+Cps) at the paper's
  // baseline: beta = 100/101.
  const double beta = 100.0 / 101.0;
  const double expected =
      (1.0 - beta) / (1.0 - std::pow(beta, 16)) * 200.0 * 101.0;
  EXPECT_NEAR(homogeneous_execution_time(paper_params(), 200.0, 16), expected, 1e-8);
}

TEST(Homogeneous, LinearInSigma) {
  const double e1 = homogeneous_execution_time(paper_params(), 100.0, 8);
  const double e2 = homogeneous_execution_time(paper_params(), 200.0, 8);
  EXPECT_NEAR(e2, 2.0 * e1, 1e-9);
  EXPECT_DOUBLE_EQ(homogeneous_execution_time(paper_params(), 0.0, 8), 0.0);
}

TEST(Homogeneous, StrictlyDecreasingInN) {
  double previous = homogeneous_execution_time(paper_params(), 200.0, 1);
  for (std::size_t n = 2; n <= 64; ++n) {
    const double current = homogeneous_execution_time(paper_params(), 200.0, n);
    EXPECT_LT(current, previous) << "n=" << n;
    previous = current;
  }
}

TEST(Homogeneous, BoundedBelowByTransmissionLimit) {
  const double limit = homogeneous_execution_time_limit(paper_params(), 200.0);
  EXPECT_DOUBLE_EQ(limit, 200.0);
  for (std::size_t n : {1u, 4u, 16u, 64u}) {
    EXPECT_GT(homogeneous_execution_time(paper_params(), 200.0, n), limit);
  }
  // For huge n the gap sinks below one ulp of the limit: only >= holds.
  for (std::size_t n : {256u, 4096u}) {
    EXPECT_GE(homogeneous_execution_time(paper_params(), 200.0, n), limit);
  }
  // ... and converges to it.
  EXPECT_NEAR(homogeneous_execution_time(paper_params(), 200.0, 5000), limit, 0.01);
}

TEST(Homogeneous, InvalidInputsThrow) {
  EXPECT_THROW(homogeneous_execution_time(paper_params(), 200.0, 0), std::invalid_argument);
  EXPECT_THROW(homogeneous_execution_time(paper_params(), -1.0, 4), std::invalid_argument);
  EXPECT_THROW(homogeneous_execution_time(ClusterParams{.node_count = 4, .cms = 0.0, .cps = 1.0},
                                          1.0, 2),
               std::invalid_argument);
  EXPECT_THROW(homogeneous_partition(paper_params(), 0), std::invalid_argument);
}

TEST(HomogeneousPartition, SumsToOneAndGeometric) {
  const auto alpha = homogeneous_partition(paper_params(), 8);
  ASSERT_EQ(alpha.size(), 8u);
  double sum = 0.0;
  const double beta = paper_params().beta();
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    EXPECT_GT(alpha[i], 0.0);
    sum += alpha[i];
    if (i > 0) {
      EXPECT_NEAR(alpha[i] / alpha[i - 1], beta, 1e-12);
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(HomogeneousPartition, SingleNodeTakesAll) {
  const auto alpha = homogeneous_partition(paper_params(), 1);
  ASSERT_EQ(alpha.size(), 1u);
  EXPECT_DOUBLE_EQ(alpha[0], 1.0);
}

TEST(HomogeneousPartition, AllNodesFinishSimultaneously) {
  // The DLT optimality criterion: zero finish skew under the optimal split.
  for (std::size_t n : {2u, 4u, 8u, 16u}) {
    const auto alpha = homogeneous_partition(paper_params(), n);
    EXPECT_NEAR(homogeneous_finish_skew(paper_params(), 200.0, alpha), 0.0, 1e-7) << n;
  }
}

TEST(HomogeneousPartition, EqualSplitHasPositiveSkew) {
  const std::vector<double> equal(8, 1.0 / 8.0);
  EXPECT_GT(homogeneous_finish_skew(paper_params(), 200.0, equal), 1.0);
  EXPECT_THROW(homogeneous_finish_skew(paper_params(), 200.0, {}), std::invalid_argument);
}

TEST(HomogeneousPartition, FirstFinishEqualsExecutionTime) {
  // Node 1's transmission+computation alone spans the full E(sigma, n).
  const auto alpha = homogeneous_partition(paper_params(), 8);
  const double first = alpha[0] * 200.0 * (1.0 + 100.0);
  EXPECT_NEAR(first, homogeneous_execution_time(paper_params(), 200.0, 8), 1e-8);
}

// Property sweep across the paper's parameter grid (Cms x Cps x n).
class HomogeneousSweep
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(HomogeneousSweep, PartitionOptimalityInvariants) {
  const auto [cms, cps, n_int] = GetParam();
  const std::size_t n = static_cast<std::size_t>(n_int);
  const ClusterParams params{.node_count = 64, .cms = cms, .cps = cps};
  const double sigma = 200.0;

  const auto alpha = homogeneous_partition(params, n);
  double sum = 0.0;
  for (double a : alpha) sum += a;
  EXPECT_NEAR(sum, 1.0, 1e-10);

  // Zero skew and E consistency.
  const double e = homogeneous_execution_time(params, sigma, n);
  EXPECT_NEAR(homogeneous_finish_skew(params, sigma, alpha), 0.0, e * 1e-9);
  EXPECT_NEAR(alpha[0] * sigma * (cms + cps), e, e * 1e-9);

  // E decreases with n and stays above the transmission limit.
  if (n > 1) {
    EXPECT_LT(e, homogeneous_execution_time(params, sigma, n - 1));
  }
  EXPECT_GT(e, homogeneous_execution_time_limit(params, sigma));
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, HomogeneousSweep,
    ::testing::Combine(::testing::Values(1.0, 2.0, 4.0, 8.0),        // Cms (Fig. 7)
                       ::testing::Values(10.0, 50.0, 100.0, 500.0,   // Cps (Fig. 8)
                                         1000.0, 5000.0, 10000.0),
                       ::testing::Values(1, 2, 3, 8, 16, 33)));

}  // namespace
}  // namespace rtdls::dlt
