// Golden regression tests: one fixed workload, every algorithm, pinned
// outcome ranges. These are deliberately tighter than the property tests -
// they exist to catch unintended behavioural drift in the scheduler (a
// changed tie-break, an off-by-one in the n search) that the invariant
// tests would tolerate. Tolerances absorb floating-point/platform noise
// while still flagging any real semantic change.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace rtdls {
namespace {

const std::vector<workload::Task>& golden_tasks() {
  static const std::vector<workload::Task> tasks = [] {
    workload::WorkloadParams params;
    params.cluster = {.node_count = 16, .cms = 1.0, .cps = 100.0};
    params.system_load = 0.8;
    params.avg_sigma = 200.0;
    params.dc_ratio = 2.0;
    params.total_time = 1'000'000.0;
    params.seed = 20070227;
    params.stream = 0;
    return workload::generate_workload(params);
  }();
  return tasks;
}

double golden_reject(const std::string& algorithm) {
  sim::SimulatorConfig config;
  config.params = {.node_count = 16, .cms = 1.0, .cps = 100.0};
  return sim::simulate(config, algorithm, golden_tasks(), 1'000'000.0).reject_ratio();
}

TEST(Golden, WorkloadShape) {
  const auto& tasks = golden_tasks();
  // ~589 arrivals expected at this seed/horizon (lambda = load / E(avg,16)).
  EXPECT_NEAR(static_cast<double>(tasks.size()), 589.0, 60.0);
}

TEST(Golden, RejectRatiosPinned) {
  // Values measured at commit time; the ordering constraints below are the
  // semantic content, the ranges catch drift.
  const std::map<std::string, std::pair<double, double>> expected = {
      {"EDF-OPR-MN", {0.30, 0.44}},   {"EDF-DLT", {0.28, 0.42}},
      {"FIFO-OPR-MN", {0.30, 0.44}},  {"FIFO-DLT", {0.28, 0.42}},
      {"EDF-UserSplit", {0.33, 0.48}}, {"EDF-OPR-AN", {0.26, 0.40}},
  };
  std::map<std::string, double> measured;
  for (const auto& [name, range] : expected) {
    const double ratio = golden_reject(name);
    measured[name] = ratio;
    EXPECT_GE(ratio, range.first) << name;
    EXPECT_LE(ratio, range.second) << name;
  }
  // Cross-algorithm ordering at this load (the paper's claims).
  EXPECT_LT(measured["EDF-DLT"], measured["EDF-OPR-MN"]);
  EXPECT_LT(measured["FIFO-DLT"], measured["FIFO-OPR-MN"]);
  EXPECT_LT(measured["EDF-DLT"], measured["EDF-UserSplit"]);
}

TEST(Golden, DeterministicAcrossProcessRuns) {
  // Bitwise-identical metrics for repeated evaluations within a process;
  // combined with the fixed seed this pins the full decision sequence.
  const double first = golden_reject("EDF-DLT");
  const double second = golden_reject("EDF-DLT");
  EXPECT_DOUBLE_EQ(first, second);
}

TEST(Golden, BackfillTracksOprMnClosely) {
  const double mn = golden_reject("EDF-OPR-MN");
  const double bf = golden_reject("EDF-OPR-MN-BF");
  // The measured finding: conservative backfilling recovers almost none of
  // the IIT waste on this workload (gaps are rarely co-usable).
  EXPECT_NEAR(bf, mn, 0.02);
}

}  // namespace
}  // namespace rtdls
