// Tests for the n_min machinery of Section 4.1.1 B (Eq. 8-14).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <tuple>

#include "dlt/homogeneous.hpp"
#include "dlt/nmin.hpp"

namespace rtdls::dlt {
namespace {

ClusterParams paper_params() { return {.node_count = 16, .cms = 1.0, .cps = 100.0}; }

TEST(Nmin, DeadlinePassedRejected) {
  const NminResult result = minimum_nodes(paper_params(), 200.0, /*deadline=*/100.0,
                                          /*rn=*/100.0);
  EXPECT_FALSE(result.feasible());
  EXPECT_EQ(result.reason, Infeasibility::kDeadlinePassed);
  EXPECT_FALSE(minimum_nodes(paper_params(), 200.0, 100.0, 150.0).feasible());
}

TEST(Nmin, TransmissionTooLongRejected) {
  // slack = 150 < sigma*Cms = 200: gamma <= 0.
  const NminResult result = minimum_nodes(paper_params(), 200.0, 150.0, 0.0);
  EXPECT_FALSE(result.feasible());
  EXPECT_EQ(result.reason, Infeasibility::kTransmissionTooLong);
}

TEST(Nmin, GenerousDeadlineNeedsOneNode) {
  // slack far above sigma*(Cms+Cps) = 20200.
  const NminResult result = minimum_nodes(paper_params(), 200.0, 1e6, 0.0);
  ASSERT_TRUE(result.feasible());
  EXPECT_EQ(result.nodes, 1u);
}

TEST(Nmin, BoundIsSufficient) {
  // The defining property: E(sigma, n_min) <= deadline - rn.
  for (double slack : {250.0, 500.0, 1000.0, 2000.0, 5000.0, 20000.0}) {
    const NminResult result = minimum_nodes(paper_params(), 200.0, slack, 0.0);
    ASSERT_TRUE(result.feasible()) << "slack=" << slack;
    EXPECT_LE(homogeneous_execution_time(paper_params(), 200.0, result.nodes),
              slack * (1.0 + 1e-12))
        << "slack=" << slack;
  }
}

TEST(Nmin, BoundIsTightForHomogeneousModel) {
  // For the no-IIT model the closed form is exact: n_min - 1 nodes miss.
  for (double slack : {250.0, 500.0, 1000.0, 2000.0, 5000.0}) {
    const NminResult result = minimum_nodes(paper_params(), 200.0, slack, 0.0);
    ASSERT_TRUE(result.feasible());
    if (result.nodes > 1) {
      EXPECT_GT(homogeneous_execution_time(paper_params(), 200.0, result.nodes - 1),
                slack * (1.0 - 1e-12))
          << "slack=" << slack;
    }
  }
}

TEST(Nmin, MonotoneInStartTime) {
  // Later start (smaller slack) can only require more nodes.
  std::size_t previous = 1;
  for (double rn : {0.0, 500.0, 1000.0, 1500.0, 2000.0}) {
    const NminResult result = minimum_nodes(paper_params(), 200.0, 3000.0, rn);
    ASSERT_TRUE(result.feasible()) << "rn=" << rn;
    EXPECT_GE(result.nodes, previous);
    previous = result.nodes;
  }
}

TEST(Nmin, MonotoneInSigma) {
  std::size_t previous = 1;
  for (double sigma : {50.0, 100.0, 200.0, 250.0}) {
    const NminResult result = minimum_nodes(paper_params(), sigma, 3000.0, 0.0);
    ASSERT_TRUE(result.feasible()) << "sigma=" << sigma;
    EXPECT_GE(result.nodes, previous);
    previous = result.nodes;
  }
}

TEST(Nmin, PaperBaselineValue) {
  // Baseline task: sigma=200, deadline = 2*E(200,16) ~ 2717.4 -> needs 8.
  const double deadline = 2.0 * homogeneous_execution_time(paper_params(), 200.0, 16);
  const NminResult result = minimum_nodes(paper_params(), 200.0, deadline, 0.0);
  ASSERT_TRUE(result.feasible());
  EXPECT_EQ(result.nodes, 8u);
}

TEST(Nmin, InvalidInputsThrow) {
  EXPECT_THROW(minimum_nodes(paper_params(), 0.0, 100.0, 0.0), std::invalid_argument);
  EXPECT_THROW(minimum_nodes(ClusterParams{.node_count = 1, .cms = 0.0, .cps = 1.0}, 1.0,
                             100.0, 0.0),
               std::invalid_argument);
}

TEST(MaxFeasibleSigma, InvertsExecutionTime) {
  for (std::size_t n : {1u, 4u, 16u}) {
    const double sigma = max_feasible_sigma(paper_params(), n, 5000.0);
    EXPECT_NEAR(homogeneous_execution_time(paper_params(), sigma, n), 5000.0, 1e-6);
  }
  EXPECT_DOUBLE_EQ(max_feasible_sigma(paper_params(), 4, 0.0), 0.0);
  EXPECT_THROW(max_feasible_sigma(paper_params(), 0, 10.0), std::invalid_argument);
}

// Parameterized sweep: bound validity and exactness across the paper grid.
class NminSweep : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(NminSweep, SufficientAndTight) {
  const auto [cms, cps, slack_scale] = GetParam();
  const ClusterParams params{.node_count = 64, .cms = cms, .cps = cps};
  const double sigma = 200.0;
  const double slack = slack_scale * sigma * cms;  // multiples of the tx time
  const NminResult result = minimum_nodes(params, sigma, slack, 0.0);
  if (slack_scale <= 1.0) {
    EXPECT_FALSE(result.feasible());
    return;
  }
  ASSERT_TRUE(result.feasible());
  EXPECT_GE(result.nodes, 1u);
  EXPECT_LE(homogeneous_execution_time(params, sigma, result.nodes), slack * (1.0 + 1e-9));
  if (result.nodes > 1) {
    EXPECT_GT(homogeneous_execution_time(params, sigma, result.nodes - 1),
              slack * (1.0 - 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, NminSweep,
    ::testing::Combine(::testing::Values(1.0, 2.0, 4.0, 8.0),
                       ::testing::Values(10.0, 100.0, 1000.0, 10000.0),
                       ::testing::Values(0.5, 1.0, 1.2, 2.0, 5.0, 20.0, 101.0)));

}  // namespace
}  // namespace rtdls::dlt
