// Tests for the campaign layer: spec-file round-trips, the cell-level work
// queue, shard striping, streaming sinks, and shard-merge determinism
// against the classic run_sweep path.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "exp/campaign.hpp"
#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/spec_io.hpp"

namespace rtdls::exp {
namespace {

SweepSpec tiny_sweep_a() {
  return SweepBuilder("camp_a", "tiny EDF pair")
      .cluster(16, 1.0, 100.0)
      .loads({0.3, 0.9})
      .algorithms({"EDF-OPR-MN", "EDF-DLT"})
      .runs(2)
      .sim_time(60000.0)
      .expected_winner("EDF-DLT")
      .build();
}

SweepSpec tiny_sweep_b() {
  // Deliberately different shape: 3 loads, 3 algorithms, other parameters.
  return SweepBuilder("camp_b", "tiny UserSplit comparison")
      .cluster(8, 2.0, 50.0)
      .dc_ratio(10.0)
      .avg_sigma(400.0)
      .loads({0.2, 0.5, 0.8})
      .algorithms({"EDF-OPR-MN", "EDF-DLT", "EDF-UserSplit"})
      .runs(2)
      .sim_time(60000.0)
      .seed(991)
      .build();
}

Campaign tiny_campaign() {
  return Campaign({FigureBuilder("fig_a", "figure a").panel(tiny_sweep_a()).build(),
                   FigureBuilder("fig_b", "figure b").panel(tiny_sweep_b()).build()});
}

std::string temp_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << path;
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

// --- spec serialization ----------------------------------------------------

TEST(SpecIo, SweepRoundTripPreservesEveryField) {
  SweepSpec spec = tiny_sweep_b();
  spec.release_policy = sim::ReleasePolicy::kActual;
  spec.shared_link = true;
  spec.output_ratio = 0.05;
  spec.halt_on_theorem4 = false;
  spec.confidence = 0.99;
  spec.seed = 0xDEADBEEFCAFE1234ull;  // needs all 64 bits
  spec.het_profile = "lognormal:0.4,7";

  const std::string text = serialize_sweep(spec);
  const std::vector<FigureSpec> parsed = parse_campaign(text);
  ASSERT_EQ(parsed.size(), 1u);  // top-level sweep becomes its own figure
  ASSERT_EQ(parsed[0].panels.size(), 1u);
  const SweepSpec& back = parsed[0].panels[0];

  EXPECT_EQ(back.id, spec.id);
  EXPECT_EQ(back.title, spec.title);
  EXPECT_EQ(back.cluster.node_count, spec.cluster.node_count);
  EXPECT_EQ(back.cluster.cms, spec.cluster.cms);
  EXPECT_EQ(back.cluster.cps, spec.cluster.cps);
  EXPECT_EQ(back.avg_sigma, spec.avg_sigma);
  EXPECT_EQ(back.dc_ratio, spec.dc_ratio);
  EXPECT_EQ(back.loads, spec.loads);
  EXPECT_EQ(back.algorithms, spec.algorithms);
  EXPECT_EQ(back.runs, spec.runs);
  EXPECT_EQ(back.sim_time, spec.sim_time);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.confidence, spec.confidence);
  EXPECT_EQ(back.release_policy, spec.release_policy);
  EXPECT_EQ(back.shared_link, spec.shared_link);
  EXPECT_EQ(back.output_ratio, spec.output_ratio);
  EXPECT_EQ(back.halt_on_theorem4, spec.halt_on_theorem4);
  EXPECT_EQ(back.expected_winner, spec.expected_winner);
  EXPECT_EQ(back.het_profile, spec.het_profile);

  // A homogeneous spec serializes without the het_profile key at all, so
  // pre-heterogeneity spec files stay byte-stable.
  EXPECT_EQ(serialize_sweep(tiny_sweep_b()).find("het_profile"), std::string::npos);
}

TEST(SpecIo, CampaignRoundTripIsTextuallyStable) {
  // parse(serialize(x)) then serialize again: identical text, so plans can
  // be regenerated and diffed without churn.
  const std::vector<FigureSpec> figures = tiny_campaign().figures();
  const std::string text = serialize_campaign(figures);
  const std::string again = serialize_campaign(parse_campaign(text));
  EXPECT_EQ(text, again);
}

TEST(SpecIo, PaperFiguresSurviveRoundTrip) {
  // The whole registry inventory is serializable: parse → serialize is a
  // fixed point for every paper figure and ablation.
  Scale scale;
  scale.runs = 2;
  scale.sim_time = 60000.0;
  const std::string text = serialize_campaign(all_figures(scale));
  EXPECT_EQ(text, serialize_campaign(parse_campaign(text)));
}

TEST(SpecIo, UseReferencesResolveThroughRegistry) {
  Scale scale;
  scale.runs = 2;
  scale.sim_time = 60000.0;
  const auto resolver = [&scale](const std::string& id) { return find_figure(id, scale); };
  const auto figures = parse_campaign("[figure]\nuse = fig05\n", resolver);
  ASSERT_EQ(figures.size(), 1u);
  EXPECT_EQ(figures[0].id, "fig05");
  EXPECT_EQ(figures[0].panels.size(), 2u);
  EXPECT_EQ(figures[0].panels[0].runs, 2u);
}

TEST(SpecIo, ParseErrorsAreLoud) {
  EXPECT_THROW(parse_campaign("[sweep]\nid = x\nbogus_key = 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_campaign("id = orphan\n"), std::invalid_argument);
  EXPECT_THROW(parse_campaign("[sweep]\ntitle = missing id\n"), std::invalid_argument);
  EXPECT_THROW(parse_campaign("[figure]\nid = empty_figure\n"), std::invalid_argument);
  EXPECT_THROW(parse_campaign("[sweep]\nid = x\nloads = 0.1, zebra\n"), std::invalid_argument);
  EXPECT_THROW(parse_campaign("[sweep]\nid = x\nrelease = sometimes\n"), std::invalid_argument);
  // `use` without a resolver cannot be honored.
  EXPECT_THROW(parse_campaign("[figure]\nuse = fig03\n"), std::invalid_argument);
  // `use` mixed with panels is ambiguous.
  EXPECT_THROW(parse_campaign("[figure]\nid = f\nuse = fig03\n",
                              [](const std::string&) { return FigureSpec{}; }),
               std::invalid_argument);
  // A [sweep] under a `use` figure must fail loudly, not silently vanish.
  EXPECT_THROW(parse_campaign("[figure]\nuse = fig03\n[sweep]\nid = extra\nloads = 0.5\n"
                              "algorithms = EDF-DLT\n",
                              [](const std::string&) { return FigureSpec{}; }),
               std::invalid_argument);
}

TEST(SpecIo, BuilderValidates) {
  EXPECT_THROW(SweepBuilder("x").build(), std::invalid_argument);  // no loads
  EXPECT_THROW(SweepBuilder("x").loads({0.5}).build(), std::invalid_argument);
  EXPECT_THROW(
      SweepBuilder("x").loads({0.5}).algorithms({"EDF-DLT"}).runs(0).build(),
      std::invalid_argument);
  EXPECT_THROW(FigureBuilder("f", "t").build(), std::invalid_argument);  // no panels
  const SweepSpec ok = SweepBuilder("x").loads({0.5}).algorithms({"EDF-DLT"}).build();
  EXPECT_EQ(ok.loads.size(), 1u);
}

// --- the cell queue --------------------------------------------------------

TEST(Campaign, CellDecodeRoundTrip) {
  const Campaign campaign = tiny_campaign();
  // 2 loads x 2 runs x 2 algs + 3 loads x 2 runs x 3 algs = 8 + 18.
  ASSERT_EQ(campaign.cell_count(), 26u);
  ASSERT_EQ(campaign.sweeps().size(), 2u);
  EXPECT_EQ(campaign.sweep_offset(1), 8u);
  EXPECT_EQ(campaign.panel_of(1), (std::pair<std::size_t, std::size_t>{1, 0}));

  // Every index decodes to in-range coordinates, cell order matches the
  // classic run_sweep order ((load * runs + run) * algs + alg), and indices
  // are unique.
  for (std::size_t i = 0; i < campaign.cell_count(); ++i) {
    const CellRef ref = campaign.cell(i);
    EXPECT_EQ(ref.index, i);
    const SweepSpec& spec = campaign.sweeps()[ref.sweep];
    EXPECT_LT(ref.load, spec.loads.size());
    EXPECT_LT(ref.run, spec.runs);
    EXPECT_LT(ref.algorithm, spec.algorithms.size());
    const std::size_t local =
        (ref.load * spec.runs + ref.run) * spec.algorithms.size() + ref.algorithm;
    EXPECT_EQ(campaign.sweep_offset(ref.sweep) + local, i);
  }
  EXPECT_THROW(campaign.cell(26), std::out_of_range);
}

TEST(Campaign, ValidatesPanels) {
  FigureSpec figure = FigureBuilder("f", "t").panel(tiny_sweep_a()).build();
  figure.panels[0].loads.clear();
  EXPECT_THROW(Campaign({figure}), std::invalid_argument);
  figure = FigureBuilder("f", "t").panel(tiny_sweep_a()).build();
  figure.panels[0].algorithms.clear();
  EXPECT_THROW(Campaign({figure}), std::invalid_argument);
  figure = FigureBuilder("f", "t").panel(tiny_sweep_a()).build();
  figure.panels[0].runs = 0;
  EXPECT_THROW(Campaign({figure}), std::invalid_argument);
}

TEST(Campaign, ParseShard) {
  const ShardSelection shard = parse_shard("2/5");
  EXPECT_EQ(shard.index, 2u);
  EXPECT_EQ(shard.count, 5u);
  EXPECT_TRUE(shard.contains(7));
  EXPECT_FALSE(shard.contains(8));
  EXPECT_THROW(parse_shard("5/5"), std::invalid_argument);  // 0-based
  EXPECT_THROW(parse_shard("0/0"), std::invalid_argument);
  EXPECT_THROW(parse_shard("1"), std::invalid_argument);
  EXPECT_THROW(parse_shard("a/b"), std::invalid_argument);
}

TEST(Campaign, ProgressCallbackCoversEveryShardCell) {
  const Campaign campaign = tiny_campaign();
  CampaignOptions options;
  options.shard = ShardSelection{1, 2};
  std::size_t calls = 0;
  std::size_t last_done = 0;
  options.progress = [&](const CellRef& ref, std::size_t done, std::size_t total) {
    EXPECT_EQ(total, 13u);  // 26 cells striped over 2 shards
    EXPECT_EQ(ref.index % 2, 1u);
    ++calls;
    last_done = done;
  };
  AggregateSink sink(campaign);
  run_campaign(campaign, options, sink);
  EXPECT_EQ(calls, 13u);
  EXPECT_EQ(last_done, 13u);
}

// --- determinism: sharding and merging reproduce run_sweep -----------------

TEST(Campaign, ShardAndMergeReproducesRunSweepBitForBit) {
  const std::string dir = temp_dir("rtdls_campaign_merge");
  const Campaign campaign = tiny_campaign();

  // Reference: the classic public API, one sweep at a time, with a pool.
  util::ThreadPool pool(4);
  const SweepResult ref_a = run_sweep(tiny_sweep_a(), &pool);
  const SweepResult ref_b = run_sweep(tiny_sweep_b(), &pool);
  const std::string csv_a = write_sweep_csv(dir + "/ref", ref_a);
  const std::string csv_b = write_sweep_csv(dir + "/ref", ref_b);

  // Sharded: stripe the cell queue over two "machines", each streaming its
  // cells to disk, then fold the shard files back together.
  std::vector<std::string> shard_files;
  for (std::size_t shard = 0; shard < 2; ++shard) {
    const std::string path = dir + "/shard" + std::to_string(shard) + ".csv";
    CampaignOptions options;
    options.shard = ShardSelection{shard, 2};
    options.pool = &pool;
    CellCsvSink sink(path);
    run_campaign(campaign, options, sink);
    shard_files.push_back(path);
  }
  const std::vector<SweepResult> merged = merge_cell_files(campaign, shard_files);
  ASSERT_EQ(merged.size(), 2u);

  // Raw samples and aggregates are bit-identical.
  const SweepResult* refs[] = {&ref_a, &ref_b};
  for (std::size_t s = 0; s < 2; ++s) {
    const SweepResult& ref = *refs[s];
    const SweepResult& got = merged[s];
    ASSERT_EQ(got.curves.size(), ref.curves.size());
    for (std::size_t a = 0; a < ref.curves.size(); ++a) {
      EXPECT_EQ(got.curves[a].algorithm, ref.curves[a].algorithm);
      for (std::size_t m = 0; m < kSweepMetricCount; ++m) {
        const MetricSeries& rs = ref.curves[a].metrics[m];
        const MetricSeries& gs = got.curves[a].metrics[m];
        ASSERT_EQ(gs.raw.size(), rs.raw.size());
        for (std::size_t i = 0; i < rs.raw.size(); ++i) EXPECT_EQ(gs.raw[i], rs.raw[i]);
        for (std::size_t l = 0; l < rs.per_load.size(); ++l) {
          EXPECT_EQ(gs.per_load[l].mean, rs.per_load[l].mean);
          EXPECT_EQ(gs.per_load[l].half_width, rs.per_load[l].half_width);
        }
      }
    }
  }

  // And the final CSVs are byte-identical.
  EXPECT_EQ(slurp(write_sweep_csv(dir + "/merged", merged[0])), slurp(csv_a));
  EXPECT_EQ(slurp(write_sweep_csv(dir + "/merged", merged[1])), slurp(csv_b));

  std::filesystem::remove_all(dir);
}

TEST(Campaign, ResumeFillsMissingCellsAndMergesBitIdentically) {
  const std::string dir = temp_dir("rtdls_campaign_resume");
  const Campaign campaign = tiny_campaign();
  util::ThreadPool pool(4);

  // Reference: the whole queue streamed to one cell file.
  const std::string full = dir + "/full.csv";
  {
    CampaignOptions options;
    options.pool = &pool;
    CellCsvSink sink(full);
    run_campaign(campaign, options, sink);
  }
  EXPECT_TRUE(missing_cells(campaign, {full}).empty());

  // A "killed" run: only shard 0/2 finished before the machine died.
  const std::string partial = dir + "/partial.csv";
  {
    CampaignOptions options;
    options.shard = ShardSelection{0, 2};
    options.pool = &pool;
    CellCsvSink sink(partial);
    run_campaign(campaign, options, sink);
  }
  const std::vector<std::size_t> missing = missing_cells(campaign, {partial});
  ASSERT_EQ(missing.size(), campaign.cell_count() / 2);
  for (std::size_t cell : missing) EXPECT_EQ(cell % 2, 1u);  // shard 1's stripe

  // Resume: run exactly the missing cells, appending to the same file.
  {
    CampaignOptions options;
    options.cells = &missing;
    options.pool = &pool;
    CellCsvSink sink(partial, /*append=*/true);
    run_campaign(campaign, options, sink);
  }
  EXPECT_TRUE(missing_cells(campaign, {partial}).empty());

  // The resumed file merges bit-identically to the uninterrupted run.
  const std::vector<SweepResult> want = merge_cell_files(campaign, {full});
  const std::vector<SweepResult> got = merge_cell_files(campaign, {partial});
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t s = 0; s < want.size(); ++s) {
    for (std::size_t a = 0; a < want[s].curves.size(); ++a) {
      for (std::size_t m = 0; m < kSweepMetricCount; ++m) {
        const MetricSeries& ws = want[s].curves[a].metrics[m];
        const MetricSeries& gs = got[s].curves[a].metrics[m];
        for (std::size_t i = 0; i < ws.raw.size(); ++i) EXPECT_EQ(gs.raw[i], ws.raw[i]);
      }
    }
  }
  EXPECT_EQ(slurp(write_sweep_csv(dir + "/got", got[0])),
            slurp(write_sweep_csv(dir + "/want", want[0])));

  // Resuming an already-complete file is a no-op diff.
  EXPECT_TRUE(missing_cells(campaign, {full}).empty());
  std::filesystem::remove_all(dir);
}

TEST(Campaign, HetFigureShardsMergeByteIdentically) {
  // The registry's heterogeneity figures run through the same cell queue:
  // a sharded het campaign must fold back byte-identically to the
  // unsharded run (acceptance gate of the speed-profile subsystem).
  const std::string dir = temp_dir("rtdls_campaign_het");
  Scale scale;
  scale.runs = 2;
  scale.sim_time = 30000.0;
  FigureSpec figure = find_figure("het_cv", scale);
  FigureSpec mix = find_figure("het_mix", scale);
  for (FigureSpec* f : {&figure, &mix}) {
    for (SweepSpec& panel : f->panels) {
      panel.loads = {0.4, 1.0};  // trimmed axis keeps the test fast
      EXPECT_FALSE(panel.het_profile.empty());
      EXPECT_TRUE(panel.materialized_cluster().heterogeneous());
    }
  }
  const Campaign campaign({figure, mix});
  util::ThreadPool pool(4);

  AggregateSink aggregate(campaign);
  {
    CampaignOptions options;
    options.pool = &pool;
    run_campaign(campaign, options, aggregate);
  }
  const std::vector<SweepResult> want = aggregate.take();

  std::vector<std::string> shard_files;
  for (std::size_t shard = 0; shard < 3; ++shard) {
    const std::string path = dir + "/shard" + std::to_string(shard) + ".csv";
    CampaignOptions options;
    options.shard = ShardSelection{shard, 3};
    options.pool = &pool;
    CellCsvSink sink(path);
    run_campaign(campaign, options, sink);
    shard_files.push_back(path);
  }
  const std::vector<SweepResult> got = merge_cell_files(campaign, shard_files);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t s = 0; s < want.size(); ++s) {
    // Byte-identical final CSVs, raw samples included.
    EXPECT_EQ(slurp(write_sweep_csv(dir + "/got", got[s])),
              slurp(write_sweep_csv(dir + "/want", want[s])));
    // A heterogeneous cluster is genuinely lossier or busier than nothing:
    // the sweep must have simulated real work.
    EXPECT_GT(series_mean(got[s].curves[0].series(SweepMetric::kUtilization)), 0.0);
  }
  std::filesystem::remove_all(dir);
}

TEST(Campaign, RunSweepsMatchesPerSweepRuns) {
  // The multi-sweep campaign path (one interleaved cell queue) returns the
  // same numbers as independent per-sweep runs.
  const std::vector<SweepResult> together = run_sweeps({tiny_sweep_a(), tiny_sweep_b()});
  const SweepResult alone_a = run_sweep(tiny_sweep_a());
  ASSERT_EQ(together.size(), 2u);
  for (std::size_t m = 0; m < kSweepMetricCount; ++m) {
    const MetricSeries& ts = together[0].curves[1].metrics[m];
    const MetricSeries& as = alone_a.curves[1].metrics[m];
    for (std::size_t i = 0; i < as.raw.size(); ++i) EXPECT_EQ(ts.raw[i], as.raw[i]);
  }
}

TEST(Campaign, TeeSinkFeedsAggregateAndCellFile) {
  const std::string dir = temp_dir("rtdls_campaign_tee");
  const std::string path = dir + "/cells.csv";
  const Campaign campaign = tiny_campaign();
  AggregateSink aggregate(campaign);
  {
    CellCsvSink cells(path);
    std::vector<ResultSink*> sinks{&aggregate, &cells};
    TeeSink tee(sinks);
    run_campaign(campaign, CampaignOptions{}, tee);
  }
  // The streamed file alone reconstructs what the aggregate saw.
  const std::vector<SweepResult> from_file = merge_cell_files(campaign, {path});
  const std::vector<SweepResult> direct = aggregate.take();
  ASSERT_EQ(from_file.size(), direct.size());
  for (std::size_t s = 0; s < direct.size(); ++s) {
    for (std::size_t a = 0; a < direct[s].curves.size(); ++a) {
      const auto& want = direct[s].curves[a].series(SweepMetric::kRejectRatio).raw;
      const auto& got = from_file[s].curves[a].series(SweepMetric::kRejectRatio).raw;
      for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(Campaign, MergeRejectsMissingDuplicateAndForeignCells) {
  const std::string dir = temp_dir("rtdls_campaign_badmerge");
  const Campaign campaign = tiny_campaign();
  const std::string shard0 = dir + "/shard0.csv";
  {
    CampaignOptions options;
    options.shard = ShardSelection{0, 2};
    CellCsvSink sink(shard0);
    run_campaign(campaign, options, sink);
  }
  // Half the cells are missing.
  EXPECT_THROW(merge_cell_files(campaign, {shard0}), std::runtime_error);
  // The same shard twice: duplicates.
  EXPECT_THROW(merge_cell_files(campaign, {shard0, shard0}), std::runtime_error);
  // A cell file from a different campaign: id cross-check fails.
  const Campaign other({FigureBuilder("f", "t").panel(tiny_sweep_b()).build()});
  const std::string other_cells = dir + "/other.csv";
  {
    CellCsvSink sink(other_cells);
    run_campaign(other, CampaignOptions{}, sink);
  }
  EXPECT_THROW(merge_cell_files(campaign, {other_cells, shard0}), std::runtime_error);
  // Not a cell file at all.
  const std::string junk = dir + "/junk.csv";
  std::ofstream(junk) << "a,b,c\n1,2,3\n";
  EXPECT_THROW(merge_cell_files(campaign, {junk}), std::runtime_error);
  EXPECT_THROW(merge_cell_files(campaign, {dir + "/does_not_exist.csv"}), std::runtime_error);
  std::filesystem::remove_all(dir);
}

// --- retry handling --------------------------------------------------------

/// A campaign whose second algorithm cannot be constructed: every one of its
/// cells fails deterministically at slot acquisition, the healthy cells
/// complete normally.
Campaign flaky_campaign() {
  SweepSpec spec = tiny_sweep_a();
  spec.algorithms = {"EDF-DLT", "NO-SUCH-ALGORITHM"};
  return Campaign({FigureBuilder("flaky", "flaky").panel(spec).build()});
}

TEST(Campaign, RetriesRecordFailedCellsInsteadOfAborting) {
  const Campaign campaign = flaky_campaign();
  const SweepSpec& spec = campaign.sweeps()[0];
  const std::size_t cells_per_algorithm = spec.loads.size() * spec.runs;

  // Fail-fast default: a failing cell aborts the run (the historical
  // behavior; options.failed unset).
  {
    AggregateSink sink(campaign);
    EXPECT_THROW(run_campaign(campaign, CampaignOptions{}, sink), std::invalid_argument);
  }

  // Tolerant: every bad cell is retried 1 + retries times, recorded, and
  // the run completes; the healthy algorithm's cells all stream through.
  std::vector<FailedCell> failed;
  std::size_t consumed = 0;
  class CountingSink : public ResultSink {
   public:
    explicit CountingSink(std::size_t& n) : n_(&n) {}
    void consume(const Campaign&, const CellResult&) override { ++*n_; }

   private:
    std::size_t* n_;
  } sink(consumed);
  CampaignOptions options;
  options.retries = 2;
  options.failed = &failed;
  run_campaign(campaign, options, sink);

  EXPECT_EQ(consumed, cells_per_algorithm);
  ASSERT_EQ(failed.size(), cells_per_algorithm);
  for (std::size_t i = 0; i < failed.size(); ++i) {
    EXPECT_EQ(failed[i].attempts, 3u) << "cell " << failed[i].index;  // 1 + 2 retries
    EXPECT_FALSE(failed[i].error.empty());
    if (i > 0) {
      EXPECT_LT(failed[i - 1].index, failed[i].index);  // canonical order
    }
    // Every failed cell belongs to the broken algorithm.
    EXPECT_EQ(campaign.cell(failed[i].index).algorithm, 1u);
  }
}

TEST(Campaign, FailedCellsReportRoundTripsThroughCsv) {
  const std::string dir = temp_dir("rtdls_campaign_failedcells");
  const std::string path = dir + "/cells.csv.failed";
  const std::vector<FailedCell> failed{
      {3, 4, "make_algorithm: unknown rule in 'X'"},
      {7, 1, "error with, comma and \"quotes\"\nand a newline"},
  };
  write_failed_cells(path, failed);
  const std::vector<FailedCell> back = read_failed_cells(path);
  ASSERT_EQ(back.size(), failed.size());
  for (std::size_t i = 0; i < failed.size(); ++i) {
    EXPECT_EQ(back[i].index, failed[i].index);
    EXPECT_EQ(back[i].attempts, failed[i].attempts);
    EXPECT_EQ(back[i].error, failed[i].error);
  }
  EXPECT_THROW(read_failed_cells(dir + "/missing.failed"), std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(Campaign, MergeTellsFailedCellsFromNeverRunCells) {
  const std::string dir = temp_dir("rtdls_campaign_failedmerge");
  const Campaign campaign = flaky_campaign();
  const std::string cells_path = dir + "/cells.csv";

  std::vector<FailedCell> failed;
  CampaignOptions options;
  options.retries = 0;
  options.failed = &failed;
  {
    CellCsvSink sink(cells_path);
    run_campaign(campaign, options, sink);
  }
  ASSERT_FALSE(failed.empty());

  // With the failed-cells report the coverage error names the shard failure
  // and its error text; without it the cells just "never ran".
  try {
    merge_cell_files(campaign, {cells_path}, &failed);
    FAIL() << "merge accepted an incomplete cell file";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("failed on their shard"), std::string::npos) << what;
    EXPECT_NE(what.find("unknown"), std::string::npos) << what;  // the make_algorithm error
    EXPECT_EQ(what.find("never ran"), std::string::npos) << what;
  }
  try {
    merge_cell_files(campaign, {cells_path});
    FAIL() << "merge accepted an incomplete cell file";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("never ran"), std::string::npos) << what;
    EXPECT_EQ(what.find("failed on their shard"), std::string::npos) << what;
  }
  std::filesystem::remove_all(dir);
}

// --- cell timeouts and cooperative cancellation ----------------------------

TEST(Campaign, CellTimeoutFlowsThroughFailedCellsPath) {
  // An impossibly small budget fails every attempt through the same
  // retries/failed machinery as a thrown simulation: nothing reaches the
  // sink, every cell lands in the report with the budget error. The cells
  // must be slow enough (hundreds of thousands of tasks -> milliseconds of
  // wall clock) that they cannot finish inside the thread-spawn window
  // before the 1ns budget is checked; the trace is generated outside the
  // budgeted region, so only the simulation itself needs to be slow.
  const SweepSpec slow = SweepBuilder("camp_slow", "timeout fodder")
                             .cluster(16, 1.0, 100.0)
                             .loads({0.9})
                             .algorithms({"EDF-DLT"})
                             .runs(2)
                             .sim_time(3.0e8)
                             .build();
  const Campaign campaign({FigureBuilder("fig_slow", "slow figure").panel(slow).build()});

  struct CountingSink : public ResultSink {
    std::size_t consumed = 0;
    void consume(const Campaign&, const CellResult&) override { ++consumed; }
    void close() override {}
  };

  std::vector<FailedCell> failed;
  CampaignOptions options;
  options.cell_timeout_sec = 1e-9;
  options.retries = 1;
  options.failed = &failed;
  CountingSink sink;
  run_campaign(campaign, options, sink);
  join_timed_out_cells();

  EXPECT_EQ(sink.consumed, 0u);
  ASSERT_EQ(failed.size(), campaign.cell_count());
  for (const FailedCell& cell : failed) {
    EXPECT_EQ(cell.attempts, 2u);  // first try + one retry, both over budget
    EXPECT_NE(cell.error.find("cell-timeout-sec budget"), std::string::npos) << cell.error;
  }

  // Without a failed-cells report the timeout is fail-fast, like any other
  // exhausted-retries error.
  CampaignOptions fail_fast;
  fail_fast.cell_timeout_sec = 1e-9;
  CountingSink unused;
  EXPECT_THROW(run_campaign(campaign, fail_fast, unused), std::runtime_error);
  join_timed_out_cells();
}

TEST(Campaign, GenerousCellTimeoutIsBitIdentical) {
  // The timeout path runs attempts on a helper thread; with a budget no sane
  // cell ever hits, that detour must not change a byte of output.
  const std::string dir = temp_dir("rtdls_campaign_timeout_id");
  const Campaign campaign = tiny_campaign();

  const std::string plain_path = dir + "/plain.csv";
  const std::string budget_path = dir + "/budget.csv";
  {
    CellCsvSink sink(plain_path);
    run_campaign(campaign, CampaignOptions{}, sink);
  }
  {
    CampaignOptions options;
    options.cell_timeout_sec = 3600.0;
    CellCsvSink sink(budget_path);
    run_campaign(campaign, options, sink);
  }
  join_timed_out_cells();
  EXPECT_EQ(slurp(plain_path), slurp(budget_path));
  std::filesystem::remove_all(dir);
}

TEST(Campaign, CancelSkipsUnstartedCellsResumably) {
  // The SIGINT path: raise the cancel flag after the first completed cell,
  // let the run drain, and check the shard file is a valid partial result
  // that `campaign resume` (missing_cells + append) completes exactly.
  const std::string dir = temp_dir("rtdls_campaign_cancel");
  const Campaign campaign = tiny_campaign();
  const std::string path = dir + "/cells.csv";

  std::atomic<bool> cancel{false};
  CampaignOptions options;  // default: sequential, so "one completed cell" is exact
  options.cancel = &cancel;
  options.progress = [&cancel](const CellRef&, std::size_t done, std::size_t) {
    if (done >= 1) cancel.store(true);
  };
  {
    CellCsvSink sink(path);
    run_campaign(campaign, options, sink);
  }

  std::vector<std::size_t> missing = missing_cells(campaign, {path});
  ASSERT_EQ(missing.size(), campaign.cell_count() - 1);
  EXPECT_THROW(merge_cell_files(campaign, {path}), std::runtime_error);

  CampaignOptions resume;
  resume.cells = &missing;
  {
    CellCsvSink sink(path, /*append=*/true);
    run_campaign(campaign, resume, sink);
  }
  EXPECT_TRUE(missing_cells(campaign, {path}).empty());

  // The cancelled-then-resumed file merges to the same figures as one
  // uninterrupted run.
  const std::string full = dir + "/full.csv";
  {
    CellCsvSink sink(full);
    run_campaign(campaign, CampaignOptions{}, sink);
  }
  const std::vector<SweepResult> resumed = merge_cell_files(campaign, {path});
  const std::vector<SweepResult> want = merge_cell_files(campaign, {full});
  ASSERT_EQ(resumed.size(), want.size());
  for (std::size_t s = 0; s < want.size(); ++s) {
    EXPECT_EQ(slurp(write_sweep_csv(dir + "/resumed", resumed[s])),
              slurp(write_sweep_csv(dir + "/want", want[s])));
  }
  std::filesystem::remove_all(dir);
}

// --- registry lookups ------------------------------------------------------

TEST(Campaign, RegistryLookupMatchesInventory) {
  Scale scale;
  scale.runs = 2;
  scale.sim_time = 60000.0;
  const std::vector<std::string> ids = figure_ids();
  ASSERT_EQ(ids.size(), 21u);  // figures 3-16 + 5 ablations + 2 het sweeps
  const std::vector<FigureSpec> figures = all_figures(scale);
  ASSERT_EQ(figures.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(figures[i].id, ids[i]);
    const FigureSpec found = find_figure(ids[i], scale);
    EXPECT_EQ(found.id, ids[i]);
    EXPECT_EQ(found.panels.size(), figures[i].panels.size());
  }
  EXPECT_EQ(paper_figures(scale).size(), 14u);
  EXPECT_THROW(find_figure("fig99", scale), std::invalid_argument);
}

TEST(Campaign, WholePaperPlanFlattens) {
  // The headline use case: every paper figure plus every ablation in one
  // queue, sharded 4 ways with nothing lost.
  Scale scale;
  scale.runs = 2;
  scale.sim_time = 60000.0;
  const Campaign campaign(all_figures(scale));
  EXPECT_GT(campaign.cell_count(), 1000u);
  std::size_t striped = 0;
  for (std::size_t shard = 0; shard < 4; ++shard) {
    const std::size_t total = campaign.cell_count();
    striped += total / 4 + (shard < total % 4 ? 1 : 0);
  }
  EXPECT_EQ(striped, campaign.cell_count());
}

}  // namespace
}  // namespace rtdls::exp
