// Tests for the reservation calendar (backfilling substrate).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "cluster/calendar.hpp"

namespace rtdls::cluster {
namespace {

TEST(Calendar, ConstructionRequiresNodes) {
  EXPECT_THROW(NodeCalendar(0), std::invalid_argument);
  NodeCalendar calendar(4);
  EXPECT_EQ(calendar.size(), 4u);
  EXPECT_TRUE(calendar.busy(0).empty());
}

TEST(Calendar, ReserveAndQuery) {
  NodeCalendar calendar(2);
  calendar.reserve(0, 10.0, 20.0);
  EXPECT_TRUE(calendar.is_free(0, 0.0, 10.0));
  EXPECT_TRUE(calendar.is_free(0, 20.0, 30.0));
  EXPECT_FALSE(calendar.is_free(0, 5.0, 15.0));
  EXPECT_FALSE(calendar.is_free(0, 12.0, 13.0));
  EXPECT_TRUE(calendar.is_free(1, 0.0, 100.0));  // other node unaffected
}

TEST(Calendar, AbuttingReservationsAllowed) {
  NodeCalendar calendar(1);
  calendar.reserve(0, 10.0, 20.0);
  calendar.reserve(0, 20.0, 30.0);  // exact abutment
  calendar.reserve(0, 0.0, 10.0);
  EXPECT_EQ(calendar.busy(0).size(), 3u);
  EXPECT_DOUBLE_EQ(calendar.busy_time(0), 30.0);
}

TEST(Calendar, OverlapThrows) {
  NodeCalendar calendar(1);
  calendar.reserve(0, 10.0, 20.0);
  EXPECT_THROW(calendar.reserve(0, 15.0, 25.0), std::logic_error);
  EXPECT_THROW(calendar.reserve(0, 5.0, 11.0), std::logic_error);
  EXPECT_THROW(calendar.reserve(0, 12.0, 13.0), std::logic_error);
  EXPECT_THROW(calendar.reserve(0, 20.0, 10.0), std::invalid_argument);
}

TEST(Calendar, OutOfOrderInsertionStaysSorted) {
  NodeCalendar calendar(1);
  calendar.reserve(0, 50.0, 60.0);
  calendar.reserve(0, 10.0, 20.0);
  calendar.reserve(0, 30.0, 40.0);
  const auto& busy = calendar.busy(0);
  ASSERT_EQ(busy.size(), 3u);
  EXPECT_DOUBLE_EQ(busy[0].start, 10.0);
  EXPECT_DOUBLE_EQ(busy[1].start, 30.0);
  EXPECT_DOUBLE_EQ(busy[2].start, 50.0);
}

TEST(Calendar, EarliestFitFindsGaps) {
  NodeCalendar calendar(1);
  calendar.reserve(0, 10.0, 20.0);
  calendar.reserve(0, 30.0, 40.0);
  EXPECT_DOUBLE_EQ(calendar.earliest_fit(0, 0.0, 10.0), 0.0);   // before everything
  EXPECT_DOUBLE_EQ(calendar.earliest_fit(0, 0.0, 10.5), 40.0);  // too long for gaps
  EXPECT_DOUBLE_EQ(calendar.earliest_fit(0, 5.0, 8.0), 20.0);   // middle gap
  EXPECT_DOUBLE_EQ(calendar.earliest_fit(0, 25.0, 5.0), 25.0);
  EXPECT_DOUBLE_EQ(calendar.earliest_fit(0, 35.0, 1.0), 40.0);  // inside a busy block
}

TEST(Calendar, EarliestFitZeroDuration) {
  NodeCalendar calendar(1);
  calendar.reserve(0, 10.0, 20.0);
  EXPECT_DOUBLE_EQ(calendar.earliest_fit(0, 15.0, 0.0), 15.0);
}

TEST(Calendar, CandidateTimesAreEdges) {
  NodeCalendar calendar(2);
  calendar.reserve(0, 10.0, 20.0);
  calendar.reserve(1, 15.0, 25.0);
  const auto times = calendar.candidate_times(5.0);
  // {5, 10, 15, 20, 25}
  ASSERT_EQ(times.size(), 5u);
  EXPECT_DOUBLE_EQ(times.front(), 5.0);
  EXPECT_DOUBLE_EQ(times.back(), 25.0);
  // From a later origin, earlier edges are dropped.
  EXPECT_EQ(calendar.candidate_times(21.0).size(), 2u);  // {21, 25}
}

TEST(Calendar, ChainedEpsilonEdgesKeepAnchoredCandidates) {
  // Regression: the old dedupe handed the non-transitive |a-b| <= kEps
  // predicate to std::unique, whose behavior on non-equivalence relations
  // is unspecified - a chain of edges each within kEps of its neighbour
  // could collapse into one candidate arbitrarily far from the dropped
  // edges. The anchor-based dedupe guarantees every dropped edge stays
  // within kEps of a surviving candidate.
  constexpr Time kEps = 1e-9;  // NodeCalendar's reservation tolerance
  NodeCalendar calendar(4);
  const Time base = 100.0;
  const Time step = 0.6 * kEps;  // adjacent edges "equal", chain ends not
  std::vector<Time> edges;
  for (NodeId id = 0; id < 4; ++id) {
    const Time start = base + static_cast<Time>(id) * step;
    calendar.reserve(id, start, base + 50.0);
    edges.push_back(start);
    edges.push_back(base + 50.0);
  }

  const std::vector<Time> times = calendar.candidate_times(0.0);
  // Every real edge lies within kEps of a surviving candidate.
  for (Time edge : edges) {
    Time nearest = std::numeric_limits<Time>::infinity();
    for (Time t : times) nearest = std::min(nearest, std::abs(t - edge));
    EXPECT_LE(nearest, kEps) << "edge " << edge << " lost by the dedupe";
  }
  // Surviving candidates are genuinely distinct (> kEps apart), sorted.
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i] - times[i - 1], kEps);
  }
  // The chain must NOT have collapsed to a single candidate: its span
  // (1.8 * kEps) exceeds the tolerance, so at least two anchors survive
  // inside [base, base + 3*step].
  std::size_t anchors_in_chain = 0;
  for (Time t : times) {
    if (t >= base - kEps / 2 && t <= base + 3.0 * step + kEps / 2) ++anchors_in_chain;
  }
  EXPECT_GE(anchors_in_chain, 2u);
}

TEST(Calendar, EarliestWindowImmediateWhenEmpty) {
  NodeCalendar calendar(4);
  const auto window = calendar.earliest_window(7.0, 3, 100.0);
  ASSERT_TRUE(window.has_value());
  EXPECT_DOUBLE_EQ(window->start, 7.0);
  EXPECT_EQ(window->nodes.size(), 3u);
  EXPECT_EQ(window->nodes[0], 0u);  // lowest ids for determinism
}

TEST(Calendar, EarliestWindowBackfillsAGap) {
  // Nodes 0 and 1 busy [100, 200); a 2-node window of length 50 fits at 0.
  NodeCalendar calendar(2);
  calendar.reserve(0, 100.0, 200.0);
  calendar.reserve(1, 100.0, 200.0);
  const auto window = calendar.earliest_window(0.0, 2, 50.0);
  ASSERT_TRUE(window.has_value());
  EXPECT_DOUBLE_EQ(window->start, 0.0);
  // A window of length 150 does not fit in front: starts at 200.
  const auto late = calendar.earliest_window(0.0, 2, 150.0);
  ASSERT_TRUE(late.has_value());
  EXPECT_DOUBLE_EQ(late->start, 200.0);
}

TEST(Calendar, EarliestWindowPicksQualifyingNodes) {
  NodeCalendar calendar(3);
  calendar.reserve(0, 0.0, 100.0);
  const auto window = calendar.earliest_window(0.0, 2, 10.0);
  ASSERT_TRUE(window.has_value());
  EXPECT_DOUBLE_EQ(window->start, 0.0);
  EXPECT_EQ(window->nodes, (std::vector<NodeId>{1, 2}));
}

TEST(Calendar, EarliestWindowTooManyNodes) {
  NodeCalendar calendar(2);
  EXPECT_FALSE(calendar.earliest_window(0.0, 3, 1.0).has_value());
  const auto zero = calendar.earliest_window(5.0, 0, 1.0);
  ASSERT_TRUE(zero.has_value());
  EXPECT_TRUE(zero->nodes.empty());
}

}  // namespace
}  // namespace rtdls::cluster
