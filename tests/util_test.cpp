// Unit tests for src/util: strings, env, csv, cli, ascii plotting, logging.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace rtdls::util {
namespace {

// --- strings ---------------------------------------------------------------

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("EDF-DLT"), "edf-dlt");
  EXPECT_EQ(to_lower(""), "");
  EXPECT_EQ(to_lower("already lower 123"), "already lower 123");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("EDF-DLT", "EDF-"));
  EXPECT_FALSE(starts_with("EDF", "EDF-"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(0.25), "0.25");
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(0.121, 3), "0.121");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, ParseDouble) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("3.5", v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(parse_double("  -2e3 ", v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_FALSE(parse_double("abc", v));
  EXPECT_FALSE(parse_double("1.5x", v));
  EXPECT_FALSE(parse_double("", v));
}

TEST(Strings, ParseU64) {
  unsigned long long v = 0;
  EXPECT_TRUE(parse_u64("42", v));
  EXPECT_EQ(v, 42ull);
  EXPECT_FALSE(parse_u64("-1", v));
  EXPECT_FALSE(parse_u64("1.5", v));
  EXPECT_FALSE(parse_u64("", v));
}

TEST(Strings, FormatRoundtripIsBitExact) {
  for (double value : {0.1, 1.0 / 3.0, 2'000'000.0, 1e-17, -0.0, 12345.678901234567}) {
    double back = 0.0;
    ASSERT_TRUE(parse_double(format_roundtrip(value), back)) << value;
    EXPECT_EQ(back, value);
  }
}

// --- env ---------------------------------------------------------------------

TEST(Env, ReadsSetVariable) {
  ::setenv("RTDLS_TEST_VAR", "7.5", 1);
  EXPECT_EQ(get_env("RTDLS_TEST_VAR").value(), "7.5");
  EXPECT_DOUBLE_EQ(env_double("RTDLS_TEST_VAR", 1.0), 7.5);
  ::unsetenv("RTDLS_TEST_VAR");
}

TEST(Env, FallbackOnUnsetOrEmpty) {
  ::unsetenv("RTDLS_TEST_VAR");
  EXPECT_FALSE(get_env("RTDLS_TEST_VAR").has_value());
  EXPECT_DOUBLE_EQ(env_double("RTDLS_TEST_VAR", 2.5), 2.5);
  EXPECT_EQ(env_u64("RTDLS_TEST_VAR", 9ull), 9ull);
  ::setenv("RTDLS_TEST_VAR", "", 1);
  EXPECT_FALSE(get_env("RTDLS_TEST_VAR").has_value());
  ::unsetenv("RTDLS_TEST_VAR");
}

TEST(Env, FallbackOnGarbage) {
  ::setenv("RTDLS_TEST_VAR", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(env_double("RTDLS_TEST_VAR", 3.0), 3.0);
  EXPECT_EQ(env_u64("RTDLS_TEST_VAR", 4ull), 4ull);
  ::unsetenv("RTDLS_TEST_VAR");
}

TEST(Env, Flags) {
  for (const char* truthy : {"1", "true", "YES", "On"}) {
    ::setenv("RTDLS_TEST_FLAG", truthy, 1);
    EXPECT_TRUE(env_flag("RTDLS_TEST_FLAG")) << truthy;
  }
  ::setenv("RTDLS_TEST_FLAG", "0", 1);
  EXPECT_FALSE(env_flag("RTDLS_TEST_FLAG"));
  ::unsetenv("RTDLS_TEST_FLAG");
  EXPECT_TRUE(env_flag("RTDLS_TEST_FLAG", true));
}

// --- csv ---------------------------------------------------------------------

TEST(Csv, EscapePlain) { EXPECT_EQ(CsvWriter::escape("abc"), "abc"); }

TEST(Csv, EscapeSpecials) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WriteAndParseRoundTrip) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"id", "name,with comma", "quote\"d"});
  writer.write_numeric_row({1.5, -2.0, 3.0});
  EXPECT_EQ(writer.rows_written(), 2u);

  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "name,with comma");
  EXPECT_EQ(rows[0][2], "quote\"d");
  EXPECT_EQ(rows[1][0], "1.5");
}

TEST(Csv, ParseEmpty) { EXPECT_TRUE(parse_csv("").empty()); }

TEST(Csv, ParseCrLf) {
  const auto rows = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "d");
}

TEST(Csv, ParseQuotedNewline) {
  const auto rows = parse_csv("\"a\nb\",c\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "a\nb");
}

TEST(Csv, ParseMissingTrailingNewline) {
  const auto rows = parse_csv("x,y");
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 2u);
}

TEST(Csv, ParseCsvFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rtdls_util_csv_test.csv").string();
  {
    std::ofstream file(path);
    CsvWriter writer(file);
    writer.write_row({"h1", "h2"});
    writer.write_numeric_row({0.25, 1e-9});
  }
  const auto rows = parse_csv_file(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "h1");
  double v = 0.0;
  ASSERT_TRUE(parse_double(rows[1][1], v));
  EXPECT_EQ(v, 1e-9);
  std::filesystem::remove(path);
  EXPECT_THROW(parse_csv_file(path), std::runtime_error);
}

// --- cli ---------------------------------------------------------------------

CliParser make_parser() {
  CliParser cli;
  cli.add_option({"load", "system load", "0.5", false});
  cli.add_option({"name", "label", "", false});
  cli.add_option({"verbose", "chatty", "", true});
  return cli;
}

TEST(Cli, Defaults) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("load", 0.0), 0.5);
  EXPECT_FALSE(cli.get("name").has_value());
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, SpaceAndEqualsForms) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--load", "0.9", "--name=run1", "--verbose"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("load", 0.0), 0.9);
  EXPECT_EQ(cli.get("name").value(), "run1");
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, Positional) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "input.csv", "--load", "0.2", "more"};
  ASSERT_TRUE(cli.parse(5, argv));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.csv");
}

TEST(Cli, UnknownOptionFails) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(cli.parse(3, argv));
  EXPECT_NE(cli.error().find("bogus"), std::string::npos);
}

TEST(Cli, MissingValueFails) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--load"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, FlagWithValueFails) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--verbose=1"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, GetUint64KeepsFullWidth) {
  CliParser cli;
  cli.add_option({"seed", "RNG seed", "42", false});
  // Larger than any signed 32/63-bit value: must survive the round trip.
  const char* argv[] = {"prog", "--seed", "18446744073709551615"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_uint64("seed", 0), 18446744073709551615ull);
  const char* defaults[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, defaults));
  EXPECT_EQ(cli.get_uint64("seed", 0), 42u);
  cli.add_option({"other", "no default", "", false});
  EXPECT_EQ(cli.get_uint64("other", 7), 7u);
}

TEST(Cli, UsageMentionsOptions) {
  CliParser cli = make_parser();
  const std::string usage = cli.usage("prog");
  EXPECT_NE(usage.find("--load"), std::string::npos);
  EXPECT_NE(usage.find("0.5"), std::string::npos);
}

// --- ascii plot ---------------------------------------------------------------

TEST(AsciiPlot, RendersSeriesAndLegend) {
  Series s1{"EDF-DLT", {0.1, 0.5, 1.0}, {0.05, 0.2, 0.4}};
  Series s2{"EDF-OPR-MN", {0.1, 0.5, 1.0}, {0.07, 0.28, 0.45}};
  PlotOptions options;
  options.x_label = "load";
  const std::string chart = ascii_chart({s1, s2}, options);
  EXPECT_NE(chart.find("EDF-DLT"), std::string::npos);
  EXPECT_NE(chart.find("EDF-OPR-MN"), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('+'), std::string::npos);
}

TEST(AsciiPlot, EmptyDataSafe) {
  EXPECT_EQ(ascii_chart({}, PlotOptions{}), "(no data)\n");
  Series empty{"none", {}, {}};
  EXPECT_EQ(ascii_chart({empty}, PlotOptions{}), "(no data)\n");
}

TEST(AsciiPlot, ConstantSeriesSafe) {
  Series flat{"flat", {0.0, 1.0}, {0.3, 0.3}};
  EXPECT_FALSE(ascii_chart({flat}, PlotOptions{}).empty());
}

TEST(AsciiPlot, AlignedTable) {
  const std::string table = aligned_table({{"a", "long-header"}, {"wide-cell", "b"}});
  const auto lines = split(table, '\n');
  ASSERT_GE(lines.size(), 2u);
  // Columns align: "long-header" and "b" start at the same offset.
  EXPECT_EQ(lines[0].find("long-header"), lines[1].find("b"));
}

// --- log ------------------------------------------------------------------------

TEST(Log, LevelNamesRoundTrip) {
  EXPECT_EQ(log_level_name(LogLevel::kInfo), "info");
  EXPECT_EQ(parse_log_level("WARN"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("???"), LogLevel::kInfo);
}

TEST(Log, EnabledRespectsLevel) {
  Logger& logger = Logger::instance();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kError);
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  logger.set_level(original);
}

}  // namespace
}  // namespace rtdls::util
