// Ablation: the dedicated-channel assumption.
//
// The paper's analysis (Eq. 3/15, Theorem 4) assumes the head node's link
// serves one task's distribution unimpeded. This bench quantifies what the
// assumption hides: with a single globally-shared link, admission decisions
// are unchanged (the schedulability test reasons about the dedicated-link
// estimates), but actual rollouts can exceed those estimates, producing
// deadline misses among ACCEPTED tasks.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/spec.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace rtdls;
  const exp::Scale scale = exp::Scale::from_env();

  std::printf("=== Ablation: dedicated vs shared head-node link (EDF-DLT) ===\n");
  std::printf("miss ratio = accepted tasks whose actual completion exceeds the deadline\n\n");
  std::printf("%-6s %-12s %-14s %-20s %-18s\n", "load", "accepted", "reject_ratio",
              "misses(dedicated)", "misses(shared)");

  for (double load : exp::SweepSpec::paper_loads()) {
    std::size_t accepted = 0;
    std::size_t rejected = 0;
    std::size_t arrivals = 0;
    std::size_t dedicated_misses = 0;
    std::size_t shared_misses = 0;
    for (std::size_t run = 0; run < scale.runs; ++run) {
      workload::WorkloadParams params;
      params.cluster = {.node_count = 16, .cms = 1.0, .cps = 100.0};
      params.system_load = load;
      params.total_time = scale.sim_time;
      params.seed = 20070227;
      params.stream = run;
      const auto tasks = workload::generate_workload(params);

      sim::SimulatorConfig dedicated;
      dedicated.params = params.cluster;
      const sim::SimMetrics base =
          sim::simulate(dedicated, "EDF-DLT", tasks, params.total_time);

      sim::SimulatorConfig shared = dedicated;
      shared.shared_link = true;
      const sim::SimMetrics contended =
          sim::simulate(shared, "EDF-DLT", tasks, params.total_time);

      accepted += base.accepted;
      rejected += base.rejected;
      arrivals += base.arrivals;
      dedicated_misses += base.deadline_misses;
      shared_misses += contended.deadline_misses;
    }
    const double reject_ratio =
        arrivals == 0 ? 0.0 : static_cast<double>(rejected) / static_cast<double>(arrivals);
    const double miss_shared =
        accepted == 0 ? 0.0 : static_cast<double>(shared_misses) / static_cast<double>(accepted);
    std::printf("%-6.1f %-12zu %-14.4f %-20zu %-18.4f\n", load, accepted, reject_ratio,
                dedicated_misses, miss_shared);
  }

  std::printf("\ndedicated-link misses are guaranteed 0 (Theorem 4); the shared-link column\n");
  std::printf("shows how much the single-distribution-at-a-time assumption matters.\n");
  return 0;
}
