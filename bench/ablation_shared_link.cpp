// Ablation: the dedicated-channel assumption.
//
// The paper's analysis (Eq. 3/15, Theorem 4) assumes the head node's link
// serves one task's distribution unimpeded. This bench quantifies what the
// assumption hides: with a single globally-shared link, admission decisions
// are unchanged (the schedulability test reasons about the dedicated-link
// estimates), but actual rollouts can exceed those estimates, producing
// deadline misses among ACCEPTED tasks.
//
// Implemented as two sweeps through the experiment runner so the dedicated
// and shared columns come straight out of the multi-metric table
// (SweepMetric::kDeadlineMisses). Note the simulator does not count
// Theorem-4 violations under a shared link (the bound's dedicated-channel
// premise is gone, so "violations" would be meaningless); the recorded
// signal of the broken assumption is the deadline-miss column.
#include <cstdio>
#include <string>

#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace rtdls;
  const exp::Scale scale = exp::Scale::from_env();
  util::ThreadPool pool(scale.jobs);

  exp::SweepSpec dedicated;
  dedicated.id = "ablation_shared_link_dedicated";
  dedicated.title = "dedicated head-node link (paper model)";
  dedicated.cluster = {.node_count = 16, .cms = 1.0, .cps = 100.0};
  dedicated.loads = exp::SweepSpec::paper_loads();
  dedicated.algorithms = {"EDF-DLT"};
  dedicated.apply(scale);

  exp::SweepSpec shared = dedicated;
  shared.id = "ablation_shared_link_shared";
  shared.title = "single shared link";
  shared.shared_link = true;
  // Theorem-4 accounting is off under shared_link (see header comment), so
  // this is belt-and-braces: the sweep must never abort on the bound this
  // ablation deliberately invalidates.
  shared.halt_on_theorem4 = false;

  const exp::SweepResult base = exp::run_sweep(dedicated, &pool);
  const exp::SweepResult contended = exp::run_sweep(shared, &pool);

  std::printf("=== Ablation: dedicated vs shared head-node link (EDF-DLT) ===\n");
  std::printf("misses = accepted tasks whose actual completion exceeds the deadline\n");
  std::printf("(mean per run over %zu runs)\n\n", dedicated.runs);
  std::printf("%-6s %-14s %-16s %-20s %-18s\n", "load", "reject_ratio", "mean_response",
              "misses(dedicated)", "misses(shared)");

  for (std::size_t l = 0; l < dedicated.loads.size(); ++l) {
    const auto& base_curve = base.curves[0];
    const auto& shared_curve = contended.curves[0];
    std::printf("%-6.1f %-14.4f %-16.1f %-20.2f %-18.2f\n", dedicated.loads[l],
                base_curve.reject_ratio()[l].mean,
                base_curve.series(exp::SweepMetric::kMeanResponse).per_load[l].mean,
                base_curve.series(exp::SweepMetric::kDeadlineMisses).per_load[l].mean,
                shared_curve.series(exp::SweepMetric::kDeadlineMisses).per_load[l].mean);
  }

  std::printf("\ndedicated-link misses are guaranteed 0 (Theorem 4); the shared-link column\n");
  std::printf("shows how much the single-distribution-at-a-time assumption matters.\n");
  return 0;
}
