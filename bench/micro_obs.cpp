// google-benchmark microbenches for the obs layer's hot operations: the
// instrumentation budget. Counter bumps and histogram records sit on the
// simulator's per-arrival path and the daemon's per-request path, so their
// cost must stay in the handful-of-ns range; the disabled trace scope must
// be free (it is the state every span macro is in when no recorder runs).
#include <benchmark/benchmark.h>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace rtdls;

void BM_CounterAdd(benchmark::State& state) {
  static obs::Registry registry;
  obs::Counter counter = registry.counter("bench_counter");
  for (auto _ : state) {
    counter.add(1);
  }
}
BENCHMARK(BM_CounterAdd)->ThreadRange(1, 8);

void BM_GaugeSet(benchmark::State& state) {
  static obs::Registry registry;
  obs::Gauge gauge = registry.gauge("bench_gauge");
  std::int64_t v = 0;
  for (auto _ : state) {
    gauge.set(++v);
  }
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramRecord(benchmark::State& state) {
  static obs::Registry registry;
  obs::Histogram histogram =
      registry.histogram("bench_histogram", obs::HistogramOptions{1.0, 4, 128});
  double v = 1.0;
  for (auto _ : state) {
    histogram.record(v);
    v = v < 1.0e6 ? v * 1.7 : 1.0;  // walk the buckets, don't pin one
  }
}
BENCHMARK(BM_HistogramRecord)->ThreadRange(1, 8);

void BM_HistogramScrape(benchmark::State& state) {
  static obs::Registry registry;
  obs::Histogram histogram =
      registry.histogram("bench_scrape", obs::HistogramOptions{1.0, 4, 128});
  for (int i = 0; i < 10000; ++i) histogram.record(static_cast<double>(i + 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.histogram_sample("bench_scrape"));
  }
}
BENCHMARK(BM_HistogramScrape);

// The cost every RTDLS_TRACE_SCOPE pays when no recorder is armed: one
// relaxed atomic load when compiled in, literally nothing when
// RTDLS_TRACE=OFF. This is the number the <=5% idle-tracing acceptance
// bound rests on.
void BM_TraceScopeDisabled(benchmark::State& state) {
  for (auto _ : state) {
    RTDLS_TRACE_SCOPE("bench.noop", "bench");
    benchmark::DoNotOptimize(state.iterations());
  }
}
BENCHMARK(BM_TraceScopeDisabled);

#if RTDLS_TRACE_ENABLED
void BM_TraceScopeArmed(benchmark::State& state) {
  if (state.thread_index() == 0) obs::TraceRecorder::instance().start();
  for (auto _ : state) {
    RTDLS_TRACE_SCOPE("bench.armed", "bench");
    benchmark::DoNotOptimize(state.iterations());
  }
  if (state.thread_index() == 0) {
    obs::TraceRecorder::instance().stop();
    obs::TraceRecorder::instance().clear();
  }
}
BENCHMARK(BM_TraceScopeArmed);
#endif

}  // namespace
