// google-benchmark microbenches for the batched planning kernels
// (BENCH_planner.json in CI). The het resolver's post-crossing walk and the
// OPR-MN comparator inspect O(N) prefixes per arrival; these benches pit the
// historical scalar evaluation (full alpha-column rebuild per inspected
// prefix, O(N^2) per walk) against the incremental cursor and the SoA batch
// kernel that replaced it. All three produce bit-identical estimates (see
// tests/planner_kernel_test.cpp); the benches measure only the cost.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "cluster/types.hpp"
#include "dlt/het_model.hpp"
#include "sched/planner_batch.hpp"

namespace {

using namespace rtdls;
using cluster::Time;

cluster::ClusterParams paper_params(std::size_t n) {
  return {.node_count = n, .cms = 1.0, .cps = 100.0};
}

std::vector<Time> staggered(std::size_t n) {
  std::vector<Time> available(n);
  for (std::size_t i = 0; i < n; ++i) available[i] = 137.0 * static_cast<double>(i);
  return available;
}

/// Deterministic per-node speeds around the paper's cps=100 mean (splitmix64;
/// no RNG dependency so the column is identical across runs and builds).
std::vector<double> het_cps(std::size_t n) {
  std::vector<double> cps(n);
  std::uint64_t state = 0x243F6A8885A308D3ull;
  for (std::size_t i = 0; i < n; ++i) {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    cps[i] = 5.0 + static_cast<double>(z >> 11) * 0x1.0p-53 * 495.0;
  }
  return cps;
}

// --- post-crossing walk: OPR-MN estimate at every prefix 1..N ---------------

/// Historical scalar walk: rebuild the full alpha column per inspected
/// prefix. O(N^2) per walk - the cost the incremental cursor removed.
void BM_PlannerWalkScalar(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto free_times = staggered(n);
  const auto cps = het_cps(n);
  const double sigma = 200.0;
  std::vector<double> alpha;
  for (auto _ : state) {
    Time last = 0.0;
    for (std::size_t prefix = 1; prefix <= n; ++prefix) {
      dlt::general_het_alpha_into(1.0, cps, prefix, alpha);
      last = free_times[prefix - 1] + sigma * 1.0 + alpha.back() * sigma * cps[prefix - 1];
    }
    benchmark::DoNotOptimize(last);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PlannerWalkScalar)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Complexity();

/// The replacement: one shared AlphaRecurrence cursor, O(1) amortized per
/// inspected prefix, O(N) per walk.
void BM_PlannerWalkIncremental(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto free_times = staggered(n);
  const auto cps = het_cps(n);
  sched::het::PlannerBatch batch;
  for (auto _ : state) {
    batch.begin_walk(1.0, 200.0);
    Time last = 0.0;
    for (std::size_t prefix = 1; prefix <= n; ++prefix) {
      last = batch.opr_walk_estimate(free_times, cps, prefix);
    }
    benchmark::DoNotOptimize(last);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PlannerWalkIncremental)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Complexity();

/// The SoA batch form used by the OPR-MN-BF sweep: all N prefix estimates in
/// one forward pass over flat columns.
void BM_PlannerBatchEstimates(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto free_times = staggered(n);
  const auto cps = het_cps(n);
  std::vector<Time> out;
  for (auto _ : state) {
    sched::het::PlannerBatch::opr_mn_estimates(1.0, 200.0, free_times, cps, n, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PlannerBatchEstimates)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Complexity();

// --- DLT-IIT estimate: generalized Eq.-1 two-stage model --------------------

/// Historical per-prefix evaluation: full HetPartition construction
/// (allocating columns + O(prefix) E_ref rebuild) per inspected prefix.
void BM_PlannerDltScalar(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto params = paper_params(n);
  const auto free_times = staggered(n);
  const auto cps = het_cps(n);
  dlt::HetPartition partition;
  for (auto _ : state) {
    Time last = 0.0;
    for (std::size_t prefix = 1; prefix <= n; ++prefix) {
      dlt::build_het_partition_into(params, 200.0, free_times, cps, prefix, partition);
      last = partition.estimated_completion();
    }
    benchmark::DoNotOptimize(last);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PlannerDltScalar)->Arg(64)->Arg(256)->Arg(1024)->Complexity();

/// The replacement: E_ref from the cursor in O(1), then the vectorizable
/// cps_tilde/ratio column passes. Still O(prefix) per estimate (the tilde
/// model depends on r_n, so the column genuinely changes), but with the
/// E_ref rebuild gone and the passes running on flat reused columns.
void BM_PlannerDltWalk(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto params = paper_params(n);
  const auto free_times = staggered(n);
  const auto cps = het_cps(n);
  sched::het::PlannerBatch batch;
  for (auto _ : state) {
    batch.begin_walk(params.cms, 200.0);
    Time last = 0.0;
    for (std::size_t prefix = 1; prefix <= n; ++prefix) {
      last = batch.dlt_walk_estimate(free_times, cps, prefix);
    }
    benchmark::DoNotOptimize(last);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PlannerDltWalk)->Arg(64)->Arg(256)->Arg(1024)->Complexity();

// --- backfill window kernels ------------------------------------------------

/// Seed-window durations for m = 1..N riding the shared cursor (the
/// OPR-MN-BF per-candidate-time sweep) vs the one-shot streaming kernel
/// invoked per m from scratch.
void BM_PlannerWindowPrefix(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto cps = het_cps(n);
  sched::het::PlannerBatch batch;
  for (auto _ : state) {
    batch.begin_walk(1.0, 200.0);
    Time last = 0.0;
    for (std::size_t m = 1; m <= n; ++m) last = batch.window_duration_prefix(cps, m);
    benchmark::DoNotOptimize(last);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PlannerWindowPrefix)->Arg(64)->Arg(256)->Arg(1024)->Complexity();

void BM_PlannerWindowOneShot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto cps = het_cps(n);
  for (auto _ : state) {
    Time last = 0.0;
    for (std::size_t m = 1; m <= n; ++m) {
      last = sched::het::PlannerBatch::window_duration(1.0, 200.0, cps, m);
    }
    benchmark::DoNotOptimize(last);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PlannerWindowOneShot)->Arg(64)->Arg(256)->Arg(1024)->Complexity();

}  // namespace
