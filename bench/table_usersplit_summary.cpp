// Section 5.2 aggregate comparison ("we conducted a total of 330 simulations
// with different system configurations"):
//
//   * fraction of configurations where a User-Split algorithm beats the
//     corresponding DLT-Based one (paper: 8.22%),
//   * when DLT wins: average/max/min Task Reject Ratio gain
//     (paper: 0.121 / 0.224 / 0.003),
//   * when User-Split wins: the same gains (paper: 0.016 / 0.028 / 0.003).
//
// The configuration grid spans the paper's sweeps (policy x DCRatio x Cps x
// Avgsigma) x the load axis; each (config, load) cell is one "simulation".
#include <cstdio>
#include <vector>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "stats/running_stats.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace rtdls;
  const exp::Scale scale = exp::Scale::from_env();
  util::ThreadPool pool(scale.jobs);

  struct Config {
    const char* policy;
    double dc_ratio;
    double cps;
    double avg_sigma;
  };
  std::vector<Config> grid;
  for (const char* policy : {"EDF", "FIFO"}) {
    for (double dc_ratio : {2.0, 3.0, 10.0}) {
      for (double cps : {10.0, 100.0, 1000.0}) {
        for (double avg_sigma : {100.0, 200.0}) {
          grid.push_back({policy, dc_ratio, cps, avg_sigma});
        }
      }
    }
  }

  std::printf("=== Section 5.2 aggregate: DLT-Based vs User-Split across %zu configs ===\n",
              grid.size());
  std::printf("grid: {EDF,FIFO} x DCRatio {2,3,10} x Cps {10,100,1000} x Avgsigma {100,200}\n");
  std::printf("x 10 loads each -> %zu simulations per algorithm\n\n", grid.size() * 10);

  stats::RunningStats dlt_wins_gain;
  stats::RunningStats user_wins_gain;
  std::size_t cells = 0;
  std::size_t user_better = 0;

  for (const Config& config : grid) {
    exp::SweepSpec spec;
    spec.id = "usersplit_summary";
    spec.title = "cell";
    spec.cluster = {.node_count = 16, .cms = 1.0, .cps = config.cps};
    spec.avg_sigma = config.avg_sigma;
    spec.dc_ratio = config.dc_ratio;
    spec.loads = exp::SweepSpec::paper_loads();
    spec.algorithms = {std::string(config.policy) + "-DLT",
                       std::string(config.policy) + "-UserSplit"};
    spec.apply(scale);
    const exp::SweepResult result = exp::run_sweep(spec, &pool);

    for (std::size_t l = 0; l < spec.loads.size(); ++l) {
      const double dlt = result.curves[0].reject_ratio()[l].mean;
      const double user = result.curves[1].reject_ratio()[l].mean;
      ++cells;
      if (user < dlt) {
        ++user_better;
        user_wins_gain.add(dlt - user);
      } else if (dlt < user) {
        dlt_wins_gain.add(user - dlt);
      }
    }
  }

  const double user_fraction = 100.0 * static_cast<double>(user_better) /
                               static_cast<double>(cells);
  std::printf("%-46s %10s %10s\n", "", "paper", "measured");
  std::printf("%-46s %9.2f%% %9.2f%%\n", "User-Split better than DLT (fraction of sims)",
              8.22, user_fraction);
  std::printf("%-46s %10.3f %10.3f\n", "DLT wins: average reject-ratio gain", 0.121,
              dlt_wins_gain.mean());
  std::printf("%-46s %10.3f %10.3f\n", "DLT wins: maximum gain", 0.224,
              dlt_wins_gain.count() ? dlt_wins_gain.max() : 0.0);
  std::printf("%-46s %10.3f %10.3f\n", "DLT wins: minimum gain", 0.003,
              dlt_wins_gain.count() ? dlt_wins_gain.min() : 0.0);
  std::printf("%-46s %10.3f %10.3f\n", "User-Split wins: average gain", 0.016,
              user_wins_gain.mean());
  std::printf("%-46s %10.3f %10.3f\n", "User-Split wins: maximum gain", 0.028,
              user_wins_gain.count() ? user_wins_gain.max() : 0.0);
  std::printf("%-46s %10.3f %10.3f\n", "User-Split wins: minimum gain", 0.003,
              user_wins_gain.count() ? user_wins_gain.min() : 0.0);

  const bool shape_holds = user_fraction < 50.0 &&
                           dlt_wins_gain.mean() > user_wins_gain.mean();
  std::printf("\n[%s] DLT wins the large majority of configurations and by a larger margin\n",
              shape_holds ? "PASS" : "WARN");
  return 0;
}
