// google-benchmark microbenches for the closed-form DLT hot paths: the
// admission test calls these once per (task, candidate n) on every arrival,
// so their cost bounds the scheduler's per-arrival latency.
#include <benchmark/benchmark.h>

#include <vector>

#include "dlt/het_model.hpp"
#include "dlt/homogeneous.hpp"
#include "dlt/multiround.hpp"
#include "dlt/nmin.hpp"
#include "dlt/user_split.hpp"

namespace {

using namespace rtdls;

cluster::ClusterParams paper_params() {
  return {.node_count = 16, .cms = 1.0, .cps = 100.0};
}

std::vector<cluster::Time> staggered(std::size_t n) {
  std::vector<cluster::Time> available(n);
  for (std::size_t i = 0; i < n; ++i) available[i] = 137.0 * static_cast<double>(i);
  return available;
}

void BM_HomogeneousExecutionTime(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dlt::homogeneous_execution_time(paper_params(), 200.0, n));
  }
}
BENCHMARK(BM_HomogeneousExecutionTime)->Arg(2)->Arg(16)->Arg(128);

void BM_HomogeneousPartition(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dlt::homogeneous_partition(paper_params(), n));
  }
}
BENCHMARK(BM_HomogeneousPartition)->Arg(2)->Arg(16)->Arg(128);

void BM_HetPartition(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto available = staggered(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dlt::build_het_partition(paper_params(), 200.0, available));
  }
}
BENCHMARK(BM_HetPartition)->Arg(2)->Arg(16)->Arg(128);

void BM_MinimumNodes(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dlt::minimum_nodes(paper_params(), 200.0, 3000.0, 250.0));
  }
}
BENCHMARK(BM_MinimumNodes);

void BM_Theorem4Bounds(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const dlt::HetPartition part =
      dlt::build_het_partition(paper_params(), 200.0, staggered(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dlt::theorem4_completion_bounds(paper_params(), 200.0, part));
  }
}
BENCHMARK(BM_Theorem4Bounds)->Arg(16);

void BM_UserSplitSchedule(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto available = staggered(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dlt::build_user_split_schedule(paper_params(), 200.0, available));
  }
}
BENCHMARK(BM_UserSplitSchedule)->Arg(16);

void BM_MultiRoundSchedule(benchmark::State& state) {
  const auto rounds = static_cast<std::size_t>(state.range(0));
  const auto available = staggered(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dlt::build_multiround_schedule(paper_params(), 200.0, available, rounds));
  }
}
BENCHMARK(BM_MultiRoundSchedule)->Arg(1)->Arg(4)->Arg(16);

}  // namespace
