// Daemon latency storm: M concurrent clients hammering a live rtdlsd over
// its Unix socket, reporting admission latency order statistics and
// throughput (BENCH_daemon.json in CI).
//
// The daemon runs in-process (same binary, real socket, real worker pool),
// so the measured path is the full client->frame->worker->shard->reply round
// trip without any benchmark-runner process plumbing. Each client owns one
// connection and one shard stripe; task arrivals advance so the waiting
// queue stays shallow and every admit exercises the warm-session fast path
// the daemon is built around.
//
// Latency aggregation goes through the obs metrics histogram (the same
// thread-sharded structure the daemon itself uses for per-shard latency),
// so the storm's M writer threads also double as a concurrency workout for
// the scrape path; quantiles are therefore log-bucket interpolations, not
// exact order statistics (the buckets are ~18% wide).
//
//   daemon_storm [out.json] [--trace-out trace.json]
//   RTDLS_STORM_CLIENTS=8     concurrent client threads (>= 8 in CI)
//   RTDLS_STORM_REQUESTS=250  admits per client
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "util/build_info.hpp"

namespace {

using namespace rtdls;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

struct ClientStats {
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t errors = 0;
};

void storm_client(const std::string& socket_path, std::size_t thread_index,
                  std::size_t shard_count, std::size_t requests, obs::Histogram latency,
                  ClientStats& out) {
  svc::Client client(socket_path, /*timeout_ms=*/30000);
  for (std::size_t i = 0; i < requests; ++i) {
    svc::AdmitRequest request;
    request.shard = static_cast<std::uint32_t>(thread_index % shard_count);
    request.task.id = static_cast<cluster::TaskId>(thread_index * requests + i + 1);
    // Advancing arrivals keep the waiting queue shallow (earlier plans
    // auto-commit), so the storm measures steady-state admission latency
    // rather than an ever-growing schedulability test. The step puts the
    // two clients sharing a shard right around cluster capacity
    // (2 x sigma*cps / step ~ N), so accepts and rejects both flow.
    request.task.arrival = static_cast<double>(i) * 2000.0;
    request.task.sigma = 100.0 + static_cast<double>((thread_index + i) % 7) * 25.0;
    request.task.rel_deadline = 4000.0 + static_cast<double>(i % 5) * 500.0;
    const auto start = std::chrono::steady_clock::now();
    try {
      const svc::AdmitReply reply = client.admit(request);
      const auto end = std::chrono::steady_clock::now();
      latency.record(std::chrono::duration<double, std::micro>(end - start).count());
      if (reply.accepted) {
        ++out.accepted;
      } else {
        ++out.rejected;
      }
    } catch (const svc::ServiceError&) {
      ++out.errors;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_daemon.json";
  std::string trace_path;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--trace-out") == 0 && a + 1 < argc) {
      trace_path = argv[++a];
    } else {
      out_path = argv[a];
    }
  }
  const std::size_t clients = env_size("RTDLS_STORM_CLIENTS", 8);
  const std::size_t requests = env_size("RTDLS_STORM_REQUESTS", 250);

#if RTDLS_TRACE_ENABLED
  if (!trace_path.empty()) obs::TraceRecorder::instance().start();
#else
  if (!trace_path.empty()) {
    std::fprintf(stderr,
                 "daemon_storm: --trace-out ignored, recorder compiled out "
                 "(-DRTDLS_TRACE=OFF)\n");
    trace_path.clear();
  }
#endif

  svc::DaemonConfig config;
  config.socket_path = "/tmp/rtdlsd_storm_" + std::to_string(::getpid()) + ".sock";
  config.shards = std::min<std::size_t>(clients, 4);
  config.workers = clients;  // every connection gets a worker: no accept queueing
  config.default_deadline_ms = 30000;
  svc::Daemon daemon(std::move(config));
  daemon.start();

  std::printf("daemon_storm: %zu clients x %zu admits, %zu shard(s), %s\n", clients, requests,
              daemon.shard_count(), util::build_description().c_str());

  // One shared histogram; each client thread's records land in its own
  // thread-local shard, merged when histogram_sample() scrapes.
  obs::Registry registry;
  const obs::Histogram latency =
      registry.histogram("storm_admit_latency_us", obs::HistogramOptions{1.0, 4, 128});

  std::vector<ClientStats> stats(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back(storm_client, daemon.config().socket_path, c, daemon.shard_count(),
                         requests, latency, std::ref(stats[c]));
  }
  for (std::thread& thread : threads) thread.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  daemon.stop();

  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t errors = 0;
  for (const ClientStats& s : stats) {
    accepted += s.accepted;
    rejected += s.rejected;
    errors += s.errors;
  }
  const obs::HistogramSample sample = registry.histogram_sample("storm_admit_latency_us");
  if (sample.count == 0) {
    std::fprintf(stderr, "daemon_storm: every request errored\n");
    return 1;
  }

  const std::size_t total = clients * requests;
  const double rps = static_cast<double>(total) / wall;
  const double p50 = sample.quantile(0.50);
  const double p90 = sample.quantile(0.90);
  const double p99 = sample.quantile(0.99);
  std::printf("admit latency: p50=%.1fus p90=%.1fus p99=%.1fus max=%.1fus mean=%.1fus\n", p50,
              p90, p99, sample.max, sample.mean());
  std::printf("throughput: %zu requests in %.3fs = %.0f req/s (%zu accepted, %zu rejected, "
              "%zu errors)\n",
              total, wall, rps, accepted, rejected, errors);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "daemon_storm: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"daemon_storm\",\n"
      << "  \"build\": \"" << util::build_description() << "\",\n"
      << "  \"clients\": " << clients << ",\n"
      << "  \"requests_per_client\": " << requests << ",\n"
      << "  \"total_requests\": " << total << ",\n"
      << "  \"accepted\": " << accepted << ",\n"
      << "  \"rejected\": " << rejected << ",\n"
      << "  \"errors\": " << errors << ",\n"
      << "  \"wall_seconds\": " << wall << ",\n"
      << "  \"requests_per_sec\": " << rps << ",\n"
      << "  \"admit_latency_us\": {\n"
      << "    \"p50\": " << p50 << ",\n"
      << "    \"p90\": " << p90 << ",\n"
      << "    \"p99\": " << p99 << ",\n"
      << "    \"max\": " << sample.max << ",\n"
      << "    \"mean\": " << sample.mean() << "\n"
      << "  }\n"
      << "}\n";
  std::printf("wrote %s\n", out_path.c_str());

#if RTDLS_TRACE_ENABLED
  if (!trace_path.empty()) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
    recorder.stop();
    std::string trace_error;
    if (!recorder.write_json_file(trace_path, &trace_error)) {
      std::fprintf(stderr, "daemon_storm: %s\n", trace_error.c_str());
      return 1;
    }
    std::fprintf(stderr, "daemon_storm: wrote %s (%zu event(s), %zu dropped by ring wrap)\n",
                 trace_path.c_str(), recorder.event_count(), recorder.dropped());
  }
#endif
  return errors == 0 ? 0 : 1;
}
