// Extension: output-data (result collection) transfer, *-IO rules
//
// Reproduction/extension harness: prints each panel as a table plus an
// ASCII chart, writes CSV under results/, evaluates shape expectations.
#include <cstdio>

#include "exp/registry.hpp"

int main() {
  const rtdls::exp::Scale scale = rtdls::exp::Scale::from_env();
  const int warnings = rtdls::exp::report_figure(rtdls::exp::ablation_output(scale));
  if (warnings != 0) std::printf("%d shape check(s) below expectation at this scale\n", warnings);
  return 0;
}
