// Million-task replay storm: the two headline numbers behind the bucketed
// availability index and the streaming trace pipeline (BENCH_replay.json in
// CI).
//
// Part 1 - commit path, flat vs bucket, N = RTDLS_REPLAY_NODES (1e5): one
// precomputed storm of index repositions (70% commits moving entries
// forward, 30% early releases moving them back - the exact mutation mix the
// simulator feeds AvailabilityIndex::update) is replayed against both
// backends and timed. The op list is generated up front from a side array,
// so the timed loops contain nothing but update() calls; at 1e5 nodes the
// flat memmove drags ~0.8 MB per commit while the bucket backend shifts two
// fanout-bounded runs, which is where the required >= 5x comes from.
//
// Part 2 - streamed replay, RTDLS_REPLAY_TASKS (1e6) tasks: a trace CSV is
// *written row by row* to a temp file (never materialized - generation must
// not pollute the process's lifetime-max RSS) and then replayed through the
// full bounded-memory pipeline: TraceReader -> StreamingTaskSource ->
// ClusterSimulator::run_stream on the bucket backend. Reported: tasks/sec,
// the source's peak resident task count, and getrusage peak RSS - the
// number CI gates to pin the O(chunk) memory claim (a materialized
// million-task load would hold ~90 MB of tasks + CSV text; the streamed
// pipeline should stay far under that).
//
//   replay_storm [out.json]
//   RTDLS_REPLAY_NODES=100000   index size for the commit-path storm
//   RTDLS_REPLAY_UPDATES=20000  repositions per backend
//   RTDLS_REPLAY_TASKS=1000000  streamed trace length
//   RTDLS_REPLAY_SIM_NODES=512  cluster size for the streamed replay
//   RTDLS_REPLAY_CHUNK=65536    TraceReader chunk size
#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/availability_index.hpp"
#include "sched/registry.hpp"
#include "sim/simulator.hpp"
#include "sim/task_source.hpp"
#include "util/build_info.hpp"
#include "workload/rng.hpp"
#include "workload/trace.hpp"

namespace {

using namespace rtdls;
using cluster::AvailabilityIndex;
using cluster::NodeId;
using cluster::Time;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

double peak_rss_mb() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // ru_maxrss is KB on Linux
}

// --- part 1: commit-path storm ----------------------------------------------

struct UpdateOp {
  NodeId node = 0;
  Time from = 0.0;
  Time to = 0.0;
};

/// Precomputes the storm from a side array so the timed loops below are pure
/// update() calls. Forward moves land uniformly across the live window
/// (typical commit: free-now -> released-late); backward moves model early
/// releases. Times sit on a coarse grid so duplicate keys (the id tie-break
/// path) occur throughout.
std::vector<UpdateOp> make_storm(std::size_t nodes, std::size_t updates) {
  std::vector<UpdateOp> ops;
  ops.reserve(updates);
  std::vector<Time> free_times(nodes, 0.0);
  workload::Xoshiro256StarStar rng(0xC0FFEE);
  Time window = 1000.0;
  for (std::size_t i = 0; i < updates; ++i) {
    UpdateOp op;
    op.node = static_cast<NodeId>(rng() % nodes);
    op.from = free_times[op.node];
    if (rng.next_double() < 0.70) {
      op.to = op.from + 1.0 + std::floor(rng.next_double() * window);
      window += 2.0;  // the live window creeps forward like a real replay clock
    } else {
      op.to = std::floor(op.from * (0.2 + 0.7 * rng.next_double()));
    }
    free_times[op.node] = op.to;
    ops.push_back(op);
  }
  return ops;
}

double time_storm(AvailabilityIndex& index, const std::vector<UpdateOp>& ops) {
  const auto start = std::chrono::steady_clock::now();
  for (const UpdateOp& op : ops) {
    index.update(op.node, op.from, op.to);
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() /
         static_cast<double>(ops.size());
}

// --- part 2: streamed million-task replay -----------------------------------

/// Writes the replay trace one row at a time: the generator never holds more
/// than one line, so trace creation leaves no footprint in ru_maxrss. The
/// arrival step keeps the cluster loaded right around capacity (accepts and
/// rejects both flow, committed work turns the index over constantly) while
/// the waiting queue stays shallow.
void write_trace(const std::string& path, std::size_t tasks) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "replay_storm: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << "id,arrival,sigma,deadline,user_nodes\n";
  char row[128];
  double arrival = 0.0;
  for (std::size_t i = 0; i < tasks; ++i) {
    arrival += 30.0 + 2.0 * static_cast<double>(i % 9);
    const double sigma = 150.0 + 25.0 * static_cast<double>(i % 5);
    const double deadline = 400.0 + 100.0 * static_cast<double>(i % 7);
    const int len = std::snprintf(row, sizeof(row), "%zu,%.1f,%.1f,%.1f,%zu\n", i, arrival,
                                  sigma, deadline, 8 + i % 8);
    out.write(row, len);
  }
  if (!out) {
    std::fprintf(stderr, "replay_storm: write failed for %s\n", path.c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_replay.json";
  const std::size_t index_nodes = env_size("RTDLS_REPLAY_NODES", 100000);
  const std::size_t updates = env_size("RTDLS_REPLAY_UPDATES", 20000);
  const std::size_t replay_tasks = env_size("RTDLS_REPLAY_TASKS", 1000000);
  const std::size_t sim_nodes = env_size("RTDLS_REPLAY_SIM_NODES", 512);
  const std::size_t chunk_tasks = env_size("RTDLS_REPLAY_CHUNK", 65536);

  // --- commit path ----------------------------------------------------------
  std::printf("replay_storm: commit-path storm, N=%zu nodes x %zu updates\n", index_nodes,
              updates);
  const std::vector<UpdateOp> ops = make_storm(index_nodes, updates);

  AvailabilityIndex flat;
  flat.reset(index_nodes, cluster::IndexBackend::kFlat);
  const double flat_ns = time_storm(flat, ops);

  AvailabilityIndex bucket;
  bucket.reset(index_nodes, cluster::IndexBackend::kBucket);
  const double bucket_ns = time_storm(bucket, ops);

  // Same final state either way (cheap good-faith check, outside the timing).
  {
    std::vector<Time> free_times(index_nodes, 0.0);
    for (const UpdateOp& op : ops) free_times[op.node] = op.to;
    if (!flat.consistent_with(free_times) || !bucket.consistent_with(free_times)) {
      std::fprintf(stderr, "replay_storm: backends diverged after the storm\n");
      return 1;
    }
  }
  const double speedup = flat_ns / bucket_ns;
  std::printf("commit path: flat %.0f ns/update, bucket %.0f ns/update, %.1fx\n", flat_ns,
              bucket_ns, speedup);

  // --- streamed replay ------------------------------------------------------
  const std::string trace_path =
      "/tmp/rtdls_replay_" + std::to_string(static_cast<long>(::getpid())) + ".csv";
  std::printf("replay_storm: writing %zu-task trace to %s\n", replay_tasks,
              trace_path.c_str());
  write_trace(trace_path, replay_tasks);

  sim::SimulatorConfig config;
  config.params.node_count = sim_nodes;
  config.params.cms = 1.0;
  config.params.cps = 100.0;
  config.params.index_backend = cluster::IndexBackend::kBucket;

  workload::TraceReader reader(trace_path, {.chunk_tasks = chunk_tasks});
  sim::StreamingTaskSource source(reader);
  const sched::Algorithm algorithm = sched::make_algorithm("EDF-DLT");
  sim::ClusterSimulator simulator(config, algorithm);

  // Horizon past the last arrival (the row generator's maximum step).
  const double horizon = static_cast<double>(replay_tasks) * 270.0 + 10000.0;
  const auto replay_start = std::chrono::steady_clock::now();
  const sim::SimMetrics metrics = simulator.run_stream(source, horizon);
  const double replay_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - replay_start).count();
  std::remove(trace_path.c_str());

  const double tasks_per_sec = static_cast<double>(replay_tasks) / replay_wall;
  const double rss_mb = peak_rss_mb();
  std::printf("replay: %zu tasks in %.2fs = %.0f tasks/s (%zu accepted, %zu rejected)\n",
              replay_tasks, replay_wall, tasks_per_sec, metrics.accepted, metrics.rejected);
  std::printf("memory: peak %zu resident tasks across %zu-task chunks, peak RSS %.1f MB\n",
              source.peak_resident_tasks(), chunk_tasks, rss_mb);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "replay_storm: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"replay_storm\",\n"
      << "  \"build\": \"" << util::build_description() << "\",\n"
      << "  \"commit_path\": {\n"
      << "    \"index_nodes\": " << index_nodes << ",\n"
      << "    \"updates\": " << updates << ",\n"
      << "    \"flat_ns_per_update\": " << flat_ns << ",\n"
      << "    \"bucket_ns_per_update\": " << bucket_ns << ",\n"
      << "    \"speedup_x\": " << speedup << "\n"
      << "  },\n"
      << "  \"streamed_replay\": {\n"
      << "    \"tasks\": " << replay_tasks << ",\n"
      << "    \"sim_nodes\": " << sim_nodes << ",\n"
      << "    \"chunk_tasks\": " << chunk_tasks << ",\n"
      << "    \"accepted\": " << metrics.accepted << ",\n"
      << "    \"rejected\": " << metrics.rejected << ",\n"
      << "    \"wall_seconds\": " << replay_wall << ",\n"
      << "    \"tasks_per_sec\": " << tasks_per_sec << ",\n"
      << "    \"peak_resident_tasks\": " << source.peak_resident_tasks() << ",\n"
      << "    \"peak_rss_mb\": " << rss_mb << "\n"
      << "  }\n"
      << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
