// google-benchmark microbenches for the simulation machinery: event queue
// throughput, a full admission test, and whole-simulation runs per second.
#include <benchmark/benchmark.h>

#include <memory>

#include "cluster/speed_profile.hpp"
#include "sched/admission.hpp"
#include "sched/registry.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace {

using namespace rtdls;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue<std::uint64_t> queue;
    for (std::size_t i = 0; i < batch; ++i) {
      queue.push(static_cast<double>((i * 2654435761u) % batch), sim::EventPriority::kArrival,
                 i);
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * batch));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(65536);

void BM_AdmissionTest(benchmark::State& state) {
  const auto queue_length = static_cast<std::size_t>(state.range(0));
  const cluster::ClusterParams params{.node_count = 16, .cms = 1.0, .cps = 100.0};
  const sched::Algorithm algorithm = sched::make_algorithm("EDF-DLT");
  sched::AdmissionController controller(algorithm.policy, algorithm.rule.get());

  std::vector<workload::Task> tasks(queue_length + 1);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].id = i;
    tasks[i].spec = {0.0, 200.0, 50000.0 + 1000.0 * static_cast<double>(i)};
  }
  std::vector<const workload::Task*> waiting;
  for (std::size_t i = 0; i < queue_length; ++i) waiting.push_back(&tasks[i]);
  const std::vector<cluster::Time> free_times(16, 0.0);

  for (auto _ : state) {
    benchmark::DoNotOptimize(
        controller.test(&tasks.back(), waiting, params, free_times, 0.0));
  }
}
BENCHMARK(BM_AdmissionTest)->Arg(0)->Arg(8)->Arg(64);

void BM_FullSimulation(benchmark::State& state) {
  const double load = static_cast<double>(state.range(0)) / 10.0;
  workload::WorkloadParams params;
  params.cluster = {.node_count = 16, .cms = 1.0, .cps = 100.0};
  params.system_load = load;
  params.total_time = 200000.0;
  params.seed = 1;
  const auto tasks = workload::generate_workload(params);
  sim::SimulatorConfig config;
  config.params = params.cluster;

  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(config, "EDF-DLT", tasks, params.total_time));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * tasks.size()));
  state.counters["tasks"] = static_cast<double>(tasks.size());
}
BENCHMARK(BM_FullSimulation)->Arg(3)->Arg(8)->Arg(10);

// The acceptance scenario for the incremental-admission + availability-index
// work: a high-load EDF sweep with loose deadlines (DCRatio 20), where the
// waiting queue is deep and the Figure-2 re-plan of every waiting task
// dominates. Args are (dc_ratio, node_count); the N=256/1024 variants stress
// the per-plan availability handling (the index replaces the O(N log N)
// re-sorts). The horizon shrinks with N so each variant simulates a
// comparable number of arrivals (larger N -> shorter E -> faster arrivals).
void BM_HighLoadSweep(benchmark::State& state) {
  const double dc_ratio = static_cast<double>(state.range(0));
  const auto node_count = static_cast<std::size_t>(state.range(1));
  const double horizon = 400000.0 * 16.0 / static_cast<double>(node_count);
  std::vector<std::vector<workload::Task>> traces;
  std::size_t total_tasks = 0;
  for (double load : {0.8, 1.0}) {
    workload::WorkloadParams params;
    params.cluster = {.node_count = node_count, .cms = 1.0, .cps = 100.0};
    params.system_load = load;
    params.dc_ratio = dc_ratio;
    params.total_time = horizon;
    params.seed = 7;
    traces.push_back(workload::generate_workload(params));
    total_tasks += traces.back().size();
  }
  sim::SimulatorConfig config;
  config.params = {.node_count = node_count, .cms = 1.0, .cps = 100.0};

  const sched::Algorithm algorithm = sched::make_algorithm("EDF-DLT");
  sim::ClusterSimulator simulator(config, algorithm);
  for (auto _ : state) {
    for (const auto& tasks : traces) {
      benchmark::DoNotOptimize(simulator.run(tasks, horizon));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * total_tasks));
}
BENCHMARK(BM_HighLoadSweep)
    ->Args({2, 16})
    ->Args({20, 16})
    ->Args({20, 256})
    ->Args({20, 1024})
    ->Unit(benchmark::kMillisecond);

// Heterogeneous-cluster acceptance scenario: the same high-load EDF sweep
// through the het planning path (per-prefix generalized Eq.-1 partitions,
// id-tracked admission state, per-slot rollouts). Args are
// (speed CV x 100, node_count); cv=0 runs an all-equal profile - i.e. the
// homogeneous fast path with the profile attached - so the het-vs-fast-path
// overhead is the cv=0 vs BM_HighLoadSweep/20/<N> delta and the het planning
// cost is the cv>0 vs cv=0 delta.
void BM_HetSweep(benchmark::State& state) {
  const double cv = static_cast<double>(state.range(0)) / 100.0;
  const auto node_count = static_cast<std::size_t>(state.range(1));
  const double horizon = 400000.0 * 16.0 / static_cast<double>(node_count);
  std::vector<std::vector<workload::Task>> traces;
  std::size_t total_tasks = 0;
  for (double load : {0.8, 1.0}) {
    workload::WorkloadParams params;
    params.cluster = {.node_count = node_count, .cms = 1.0, .cps = 100.0};
    params.system_load = load;
    params.dc_ratio = 20.0;
    params.total_time = horizon;
    params.seed = 7;
    traces.push_back(workload::generate_workload(params));
    total_tasks += traces.back().size();
  }
  sim::SimulatorConfig config;
  config.params = {.node_count = node_count, .cms = 1.0, .cps = 100.0};
  config.params.speed_profile = std::make_shared<const cluster::SpeedProfile>(
      cluster::SpeedProfile::log_normal(node_count, 100.0, cv, 13));

  const sched::Algorithm algorithm = sched::make_algorithm("EDF-DLT");
  sim::ClusterSimulator simulator(config, algorithm);
  for (auto _ : state) {
    for (const auto& tasks : traces) {
      benchmark::DoNotOptimize(simulator.run(tasks, horizon));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * total_tasks));
}
BENCHMARK(BM_HetSweep)
    ->Args({0, 16})
    ->Args({40, 16})
    ->Args({40, 64})
    ->Args({40, 256})
    ->Args({80, 64})
    ->Unit(benchmark::kMillisecond);

// The row-diff acceptance scenario: a pure arrival burst against one
// admission session - Q accepted tasks queue up with no commits in between,
// so the session holds its deepest state. Args are (node_count, Q).
// Deadlines are scrambled so EDF insertion points wander across the queue
// (exercising the checkpointed delta-chain replay, not just the frontier
// fast path). Counters report the session's peak availability-state bytes
// and the dense one-row-per-task equivalent the refactor replaced -
// `reduction_x` is the measured O(Q*N) -> O(Q*k + sqrt(N)*N) drop.
void BM_AdmissionBurst(benchmark::State& state) {
  const auto node_count = static_cast<std::size_t>(state.range(0));
  const auto q = static_cast<std::size_t>(state.range(1));
  const cluster::ClusterParams params{.node_count = node_count, .cms = 1.0, .cps = 100.0};
  const sched::Algorithm algorithm = sched::make_algorithm("EDF-DLT");
  sched::AdmissionController controller(algorithm.policy, algorithm.rule.get());
  cluster::Cluster cluster(params);

  std::vector<workload::Task> tasks(q);
  for (std::size_t i = 0; i < q; ++i) {
    tasks[i].id = i;
    // Generous, scrambled deadlines: every arrival is accepted and lands at
    // a pseudo-random position of the EDF queue.
    const double jitter = static_cast<double>((i * 2654435761u) % q);
    tasks[i].spec = {0.0, 150.0 + static_cast<double>(i % 7) * 20.0,
                     2.0e6 + jitter * 5.0e3};
  }

  std::vector<const workload::Task*> waiting;
  for (auto _ : state) {
    controller.invalidate();
    waiting.clear();
    for (const workload::Task& task : tasks) {
      sched::AdmissionOutcome outcome =
          controller.test_incremental(task, waiting, params, cluster, 0.0);
      if (!outcome.accepted) continue;
      waiting.resize(outcome.reused_prefix);
      for (const sched::ScheduledTask& scheduled : outcome.schedule) {
        waiting.push_back(scheduled.task);
      }
    }
  }
  const auto peak = controller.peak_session_memory();
  state.counters["peak_bytes"] = static_cast<double>(peak.bytes);
  state.counters["dense_bytes"] = static_cast<double>(peak.dense_equivalent_bytes);
  state.counters["reduction_x"] =
      peak.bytes == 0 ? 0.0
                      : static_cast<double>(peak.dense_equivalent_bytes) /
                            static_cast<double>(peak.bytes);
  state.counters["queue_depth"] = static_cast<double>(waiting.size());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * q));
}
BENCHMARK(BM_AdmissionBurst)
    ->Args({256, 128})
    ->Args({1024, 256})
    ->Args({4096, 512})
    ->Unit(benchmark::kMillisecond);

void BM_WorkloadGeneration(benchmark::State& state) {
  workload::WorkloadParams params;
  params.cluster = {.node_count = 16, .cms = 1.0, .cps = 100.0};
  params.system_load = 0.8;
  params.total_time = 200000.0;
  params.seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::generate_workload(params));
  }
}
BENCHMARK(BM_WorkloadGeneration);

}  // namespace
