// Figure 8: Cps effects under EDF
//
// Reproduction harness: prints each panel as an aligned table plus an ASCII
// chart, writes CSV series under results/, and evaluates the paper's
// shape expectations (PASS/WARN lines). Scale via RTDLS_FULL / RTDLS_RUNS /
// RTDLS_SIMTIME / RTDLS_JOBS.
#include <cstdio>

#include "exp/registry.hpp"

int main() {
  const rtdls::exp::Scale scale = rtdls::exp::Scale::from_env();
  const int warnings = rtdls::exp::report_figure(rtdls::exp::fig08_cps_edf(scale));
  if (warnings != 0) std::printf("%d shape check(s) below expectation at this scale\n", warnings);
  // Reduced-scale noise must not break batch reproduction runs: report only.
  return 0;
}
