// rtdls command-line tool: the library's functionality without writing C++.
//
//   rtdls_cli algorithms                       list algorithm names
//   rtdls_cli generate --out trace.csv ...     generate a workload trace
//   rtdls_cli simulate --trace trace.csv --algorithm EDF-DLT [...]
//   rtdls_cli sweep --algorithms EDF-OPR-MN,EDF-DLT [...]    load sweep
//   rtdls_cli figure --id fig03 [...]          reproduce one paper figure
//
// Run any subcommand with --help for its options.
#include <cstdio>
#include <cstring>
#include <string>

#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "sched/registry.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace {

using namespace rtdls;

void add_workload_options(util::CliParser& cli) {
  cli.add_option({"nodes", "cluster size N", "16", false});
  cli.add_option({"cms", "unit transmission cost", "1", false});
  cli.add_option({"cps", "unit processing cost", "100", false});
  cli.add_option({"load", "SystemLoad", "0.8", false});
  cli.add_option({"sigma", "average data size", "200", false});
  cli.add_option({"dcratio", "deadline/cost ratio", "2", false});
  cli.add_option({"simtime", "TotalSimulationTime", "1000000", false});
  cli.add_option({"seed", "RNG seed", "42", false});
  cli.add_option({"help", "show usage", "", true});
}

workload::WorkloadParams workload_from_cli(const util::CliParser& cli) {
  workload::WorkloadParams params;
  params.cluster.node_count = static_cast<std::size_t>(cli.get_int("nodes", 16));
  params.cluster.cms = cli.get_double("cms", 1.0);
  params.cluster.cps = cli.get_double("cps", 100.0);
  params.system_load = cli.get_double("load", 0.8);
  params.avg_sigma = cli.get_double("sigma", 200.0);
  params.dc_ratio = cli.get_double("dcratio", 2.0);
  params.total_time = cli.get_double("simtime", 1'000'000.0);
  params.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  return params;
}

int cmd_algorithms() {
  std::puts("paper algorithms (Section 5):");
  for (const std::string& name : sched::paper_algorithm_names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::puts("extensions:");
  for (const std::string& name : sched::all_algorithm_names()) {
    bool in_paper = false;
    for (const std::string& paper : sched::paper_algorithm_names()) {
      if (paper == name) in_paper = true;
    }
    if (!in_paper) std::printf("  %s\n", name.c_str());
  }
  std::puts("modifiers: <policy>-<rule>-Opt (optimistic n search),");
  std::puts("           <any>-IO<p> (p% output data, pair with --output-ratio)");
  return 0;
}

int cmd_generate(int argc, const char* const* argv) {
  util::CliParser cli;
  add_workload_options(cli);
  cli.add_option({"out", "output trace CSV path", "trace.csv", false});
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("rtdls_cli generate").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  const workload::WorkloadParams params = workload_from_cli(cli);
  const auto tasks = workload::generate_workload(params);
  const std::string path = cli.get("out").value();
  workload::save_trace_file(path, tasks);
  std::printf("wrote %zu tasks to %s (empirical load %.3f)\n", tasks.size(), path.c_str(),
              workload::empirical_load(params, tasks));
  return 0;
}

int cmd_simulate(int argc, const char* const* argv) {
  util::CliParser cli;
  add_workload_options(cli);
  cli.add_option({"trace", "input trace CSV (else generated)", "", false});
  cli.add_option({"algorithm", "algorithm name", "EDF-DLT", false});
  cli.add_option({"release", "estimate|actual node release", "estimate", false});
  cli.add_option({"output-ratio", "result volume fraction delta", "0", false});
  cli.add_option({"shared-link", "model a shared head-node link", "", true});
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("rtdls_cli simulate").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  const workload::WorkloadParams params = workload_from_cli(cli);
  std::vector<workload::Task> tasks;
  if (const auto trace = cli.get("trace"); trace && !trace->empty()) {
    tasks = workload::load_trace_file(*trace);
  } else {
    tasks = workload::generate_workload(params);
  }

  sim::SimulatorConfig config;
  config.params = params.cluster;
  config.release_policy = util::to_lower(cli.get("release").value_or("estimate")) == "actual"
                              ? sim::ReleasePolicy::kActual
                              : sim::ReleasePolicy::kEstimate;
  config.output_ratio = cli.get_double("output-ratio", 0.0);
  config.shared_link = cli.get_flag("shared-link");

  const std::string algorithm = cli.get("algorithm").value_or("EDF-DLT");
  const sim::SimMetrics metrics =
      sim::simulate(config, algorithm, tasks, params.total_time);
  std::printf("--- %s over %zu tasks ---\n%s", algorithm.c_str(), tasks.size(),
              metrics.summary().c_str());
  return 0;
}

int cmd_sweep(int argc, const char* const* argv) {
  util::CliParser cli;
  add_workload_options(cli);
  cli.add_option({"algorithms", "comma-separated names", "EDF-OPR-MN,EDF-DLT", false});
  cli.add_option({"runs", "runs per point", "5", false});
  cli.add_option({"csv-dir", "directory for CSV/gnuplot output", "results", false});
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("rtdls_cli sweep").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  exp::SweepSpec spec;
  spec.id = "cli_sweep";
  spec.title = "command-line sweep";
  const workload::WorkloadParams params = workload_from_cli(cli);
  spec.cluster = params.cluster;
  spec.avg_sigma = params.avg_sigma;
  spec.dc_ratio = params.dc_ratio;
  spec.loads = exp::SweepSpec::paper_loads();
  spec.runs = static_cast<std::size_t>(cli.get_int("runs", 5));
  spec.sim_time = params.total_time;
  spec.seed = params.seed;
  for (const std::string& name : util::split(cli.get("algorithms").value(), ',')) {
    spec.algorithms.push_back(std::string(util::trim(name)));
  }
  const exp::SweepResult result = exp::run_sweep(spec);
  std::fputs(exp::render_sweep(result).c_str(), stdout);
  const std::string dir = cli.get("csv-dir").value();
  std::printf("csv: %s\ngnuplot: %s\n", exp::write_sweep_csv(dir, result).c_str(),
              exp::write_sweep_gnuplot(dir, result).c_str());
  return 0;
}

int cmd_figure(int argc, const char* const* argv) {
  util::CliParser cli;
  cli.add_option({"id", "figure id (fig03..fig16, ablation_*)", "fig03", false});
  cli.add_option({"help", "show usage", "", true});
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("rtdls_cli figure").c_str(), stderr);
    std::fputs("ids: fig03 fig04 fig05 fig06 fig07 fig08 fig09 fig10 fig11 fig12\n",
               stderr);
    std::fputs("     fig13 fig14 fig15 fig16 ablation_release ablation_multiround\n",
               stderr);
    std::fputs("     ablation_opr_an ablation_backfill ablation_output\n", stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  const std::string id = cli.get("id").value();
  const exp::Scale scale = exp::Scale::from_env();

  std::vector<exp::FigureSpec> figures = exp::paper_figures(scale);
  figures.push_back(exp::ablation_release_policy(scale));
  figures.push_back(exp::ablation_multiround(scale));
  figures.push_back(exp::ablation_opr_an(scale));
  figures.push_back(exp::ablation_backfill(scale));
  figures.push_back(exp::ablation_output(scale));
  for (const exp::FigureSpec& figure : figures) {
    if (figure.id == id) {
      exp::report_figure(figure);
      return 0;
    }
  }
  std::fprintf(stderr, "unknown figure id '%s'\n", id.c_str());
  return 1;
}

void print_usage() {
  std::fputs(
      "usage: rtdls_cli <command> [options]\n"
      "commands:\n"
      "  algorithms   list available scheduling algorithms\n"
      "  generate     generate a workload trace CSV\n"
      "  simulate     run one algorithm over a trace or generated workload\n"
      "  sweep        reject-ratio load sweep for a set of algorithms\n"
      "  figure       reproduce a paper figure / ablation by id\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 1;
  }
  const std::string command = argv[1];
  try {
    if (command == "algorithms") return cmd_algorithms();
    if (command == "generate") return cmd_generate(argc - 1, argv + 1);
    if (command == "simulate") return cmd_simulate(argc - 1, argv + 1);
    if (command == "sweep") return cmd_sweep(argc - 1, argv + 1);
    if (command == "figure") return cmd_figure(argc - 1, argv + 1);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  print_usage();
  return 1;
}
