// rtdls command-line tool: the library's functionality without writing C++.
//
//   rtdls_cli algorithms                       list algorithm names
//   rtdls_cli generate --out trace.csv ...     generate a workload trace
//   rtdls_cli simulate --trace trace.csv --algorithm EDF-DLT [...]
//   rtdls_cli sweep --algorithms EDF-OPR-MN,EDF-DLT [...]    load sweep
//   rtdls_cli figure --id fig03 [...]          reproduce one paper figure
//   rtdls_cli campaign <list|run|shard|resume|merge>  multi-figure experiment plans
//   rtdls_cli daemon --socket /tmp/rtdlsd.sock ...   admission-control daemon
//   rtdls_cli admit|commit|cancel|status|snapshot|shutdown --socket ...
//                                              client requests against a daemon
//
// A campaign is any set of figures flattened into one deterministic
// cell-level work queue. One machine runs it whole (`campaign run
// --figures all`); a fleet stripes it (`campaign shard --shard i/m --cells
// shard_i.csv` per machine, then `campaign merge --cells
// shard_0.csv,...`) and the merged CSVs are byte-identical to the
// single-process run. Plans come from the built-in figure inventory
// (--figures) or from declarative spec files (--spec, see exp/spec_io.hpp).
//
// Run any subcommand with --help for its options.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "cluster/speed_profile.hpp"
#include "dlt/params.hpp"
#include "exp/campaign.hpp"
#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/spec_io.hpp"
#include "obs/trace.hpp"
#include "sched/registry.hpp"
#include "sim/simulator.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "util/build_info.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace {

using namespace rtdls;

void add_workload_options(util::CliParser& cli) {
  cli.add_option({"nodes", "cluster size N", "16", false});
  cli.add_option({"cms", "unit transmission cost", "1", false});
  cli.add_option({"cps", "unit processing cost", "100", false});
  cli.add_option({"load", "SystemLoad", "0.8", false});
  cli.add_option({"sigma", "average data size", "200", false});
  cli.add_option({"dcratio", "deadline/cost ratio", "2", false});
  cli.add_option({"simtime", "TotalSimulationTime", "1000000", false});
  cli.add_option({"seed", "RNG seed", "42", false});
  cli.add_option({"help", "show usage", "", true});
}

workload::WorkloadParams workload_from_cli(const util::CliParser& cli) {
  workload::WorkloadParams params;
  params.cluster.node_count = static_cast<std::size_t>(cli.get_int("nodes", 16));
  params.cluster.cms = cli.get_double("cms", 1.0);
  params.cluster.cps = cli.get_double("cps", 100.0);
  params.system_load = cli.get_double("load", 0.8);
  params.avg_sigma = cli.get_double("sigma", 200.0);
  params.dc_ratio = cli.get_double("dcratio", 2.0);
  params.total_time = cli.get_double("simtime", 1'000'000.0);
  params.seed = cli.get_uint64("seed", 42);
  return params;
}

void add_sim_config_options(util::CliParser& cli) {
  cli.add_option({"release", "estimate|actual node release", "estimate", false});
  cli.add_option({"output-ratio", "result volume fraction delta", "0", false});
  cli.add_option({"shared-link", "model a shared head-node link", "", true});
  cli.add_option({"het-profile",
                  "per-node speed profile key: uniform:lo,hi[,seed] | "
                  "two_tier:fast,slow,frac[,seed] | lognormal:cv[,seed] | csv:path",
                  "", false});
}

std::string het_profile_from_cli(const util::CliParser& cli) {
  return cli.get("het-profile").value_or("");
}

sim::ReleasePolicy release_from_cli(const util::CliParser& cli) {
  return util::to_lower(cli.get("release").value_or("estimate")) == "actual"
             ? sim::ReleasePolicy::kActual
             : sim::ReleasePolicy::kEstimate;
}

void add_index_option(util::CliParser& cli) {
  cli.add_option({"index",
                  "availability-index backend: auto|flat|bucket (auto honors "
                  "RTDLS_INDEX, then picks by cluster size)",
                  "auto", false});
}

cluster::IndexBackend index_backend_from_cli(const util::CliParser& cli) {
  const std::string value = util::to_lower(cli.get("index").value_or("auto"));
  if (value == "flat") return cluster::IndexBackend::kFlat;
  if (value == "bucket") return cluster::IndexBackend::kBucket;
  if (value.empty() || value == "auto") return cluster::IndexBackend::kAuto;
  throw std::invalid_argument("--index: expected auto|flat|bucket, got '" + value + "'");
}

// --- tracing ----------------------------------------------------------------

void add_trace_option(util::CliParser& cli) {
  cli.add_option({"trace-out",
                  "write a Chrome trace-event JSON file (Perfetto-loadable) "
                  "covering the run",
                  "", false});
}

/// Arms the trace recorder when --trace-out was passed; returns the path.
std::string arm_trace(const util::CliParser& cli) {
  const std::string path = cli.get("trace-out").value_or("");
#if RTDLS_TRACE_ENABLED
  if (!path.empty()) obs::TraceRecorder::instance().start();
#else
  if (!path.empty()) {
    throw std::invalid_argument(
        "--trace-out: the trace recorder is compiled out of this build "
        "(-DRTDLS_TRACE=OFF)");
  }
#endif
  return path;
}

/// Flushes the armed recorder to `path` (no-op when empty); returns the
/// process exit code contribution (1 on I/O failure).
int write_trace(const std::string& path) {
  if (path.empty()) return 0;
#if RTDLS_TRACE_ENABLED
  obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
  recorder.stop();
  std::string error;
  if (!recorder.write_json_file(path, &error)) {
    std::fprintf(stderr, "trace: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "trace: wrote %s (%zu event(s), %zu dropped by ring wrap)\n",
               path.c_str(), recorder.event_count(), recorder.dropped());
#endif
  return 0;
}

// --- signals ----------------------------------------------------------------

/// SIGINT/SIGTERM land here. Campaign runs poll it as the cooperative cancel
/// flag (skipped cells stay resumable, sinks flush); the daemon loop treats
/// it exactly like a shutdown request (final snapshot included). A lock-free
/// atomic store is all the handler does, keeping it async-signal-safe.
std::atomic<bool> g_interrupted{false};

void on_signal(int) { g_interrupted.store(true); }

void install_signal_handlers() {
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
}

int cmd_algorithms() {
  std::puts("paper algorithms (Section 5):");
  for (const std::string& name : sched::paper_algorithm_names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::puts("extensions:");
  for (const std::string& name : sched::all_algorithm_names()) {
    bool in_paper = false;
    for (const std::string& paper : sched::paper_algorithm_names()) {
      if (paper == name) in_paper = true;
    }
    if (!in_paper) std::printf("  %s\n", name.c_str());
  }
  std::puts("modifiers: <policy>-<rule>-Opt (optimistic n search),");
  std::puts("           <any>-IO<p> (p% output data, pair with --output-ratio)");
  return 0;
}

int cmd_generate(int argc, const char* const* argv) {
  util::CliParser cli;
  add_workload_options(cli);
  cli.add_option({"out", "output trace CSV path", "trace.csv", false});
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("rtdls_cli generate").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  const workload::WorkloadParams params = workload_from_cli(cli);
  const auto tasks = workload::generate_workload(params);
  const std::string path = cli.get("out").value();
  workload::save_trace_file(path, tasks);
  std::printf("wrote %zu tasks to %s (empirical load %.3f)\n", tasks.size(), path.c_str(),
              workload::empirical_load(params, tasks));
  return 0;
}

int cmd_simulate(int argc, const char* const* argv) {
  util::CliParser cli;
  add_workload_options(cli);
  cli.add_option({"trace", "input trace CSV (else generated)", "", false});
  cli.add_option({"sort-arrivals", "sort an unsorted trace by arrival instead of rejecting",
                  "", true});
  cli.add_option({"stream",
                  "replay --trace in bounded-memory chunks (O(chunk) peak RSS; "
                  "incompatible with --sort-arrivals, which needs the full trace)",
                  "", true});
  cli.add_option({"chunk-tasks", "tasks per streamed chunk (--stream)", "65536", false});
  cli.add_option({"algorithm", "algorithm name", "EDF-DLT", false});
  add_index_option(cli);
  add_sim_config_options(cli);
  add_trace_option(cli);
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("rtdls_cli simulate").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  const std::string trace_path = arm_trace(cli);
  const workload::WorkloadParams params = workload_from_cli(cli);
  const std::string trace_in = cli.get("trace").value_or("");
  const bool stream = cli.get_flag("stream");
  if (stream && trace_in.empty()) {
    throw std::invalid_argument("--stream requires --trace (generated workloads are "
                                "already in memory)");
  }

  sim::SimulatorConfig config;
  config.params = params.cluster;
  config.params.index_backend = index_backend_from_cli(cli);
  config.release_policy = release_from_cli(cli);
  config.output_ratio = cli.get_double("output-ratio", 0.0);
  config.shared_link = cli.get_flag("shared-link");
  if (const std::string key = het_profile_from_cli(cli); !key.empty()) {
    config.params.speed_profile = std::make_shared<const cluster::SpeedProfile>(
        cluster::parse_speed_profile(key, config.params.node_count, config.params.cps));
    std::printf("speed profile: %s\n", config.params.speed_profile->describe().c_str());
  }

  const std::string algorithm = cli.get("algorithm").value_or("EDF-DLT");
  sim::SimMetrics metrics;
  std::size_t task_count = 0;
  if (stream) {
    workload::TraceReader::Options options;
    options.chunk_tasks = static_cast<std::size_t>(cli.get_int("chunk-tasks", 65536));
    // A streamed reader cannot sort; TraceReader rejects the combination
    // with a typed StreamedSortError naming the workaround.
    options.sort_arrivals = cli.get_flag("sort-arrivals");
    workload::TraceReader reader(trace_in, options);
    sim::StreamingTaskSource source(reader);
    const sched::Algorithm algo = sched::make_algorithm(algorithm);
    sim::ClusterSimulator simulator(config, algo);
    metrics = simulator.run_stream(source, params.total_time);
    task_count = reader.tasks_read();
    std::fprintf(stderr, "stream: %zu tasks, peak %zu resident (%zu-task chunks)\n",
                 task_count, source.peak_resident_tasks(), options.chunk_tasks);
  } else {
    std::vector<workload::Task> tasks;
    if (!trace_in.empty()) {
      tasks = workload::load_trace_file(trace_in, cli.get_flag("sort-arrivals"));
    } else {
      tasks = workload::generate_workload(params);
    }
    task_count = tasks.size();
    metrics = sim::simulate(config, algorithm, tasks, params.total_time);
  }
  std::printf("--- %s over %zu tasks ---\n%s", algorithm.c_str(), task_count,
              metrics.summary().c_str());
  return write_trace(trace_path);
}

int cmd_sweep(int argc, const char* const* argv) {
  util::CliParser cli;
  add_workload_options(cli);
  cli.add_option({"algorithms", "comma-separated names", "EDF-OPR-MN,EDF-DLT", false});
  cli.add_option({"runs", "runs per point", "5", false});
  cli.add_option({"csv-dir", "directory for CSV/gnuplot output", "results", false});
  add_sim_config_options(cli);
  cli.add_option({"halt-on-theorem4", "abort on a Theorem-4 violation; 0 records it in the "
                  "theorem4_violations series instead (ablation-style runs)", "1", false});
  add_trace_option(cli);
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("rtdls_cli sweep").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  const std::string trace_path = arm_trace(cli);
  exp::SweepSpec spec;
  spec.id = "cli_sweep";
  spec.title = "command-line sweep";
  const workload::WorkloadParams params = workload_from_cli(cli);
  spec.cluster = params.cluster;
  spec.avg_sigma = params.avg_sigma;
  spec.dc_ratio = params.dc_ratio;
  spec.loads = exp::SweepSpec::paper_loads();
  spec.runs = static_cast<std::size_t>(cli.get_int("runs", 5));
  spec.sim_time = params.total_time;
  spec.seed = params.seed;
  spec.release_policy = release_from_cli(cli);
  spec.output_ratio = cli.get_double("output-ratio", 0.0);
  spec.shared_link = cli.get_flag("shared-link");
  spec.het_profile = het_profile_from_cli(cli);
  spec.halt_on_theorem4 = cli.get_int("halt-on-theorem4", 1) != 0;
  for (const std::string& name : util::split(cli.get("algorithms").value(), ',')) {
    spec.algorithms.push_back(std::string(util::trim(name)));
  }
  const exp::SweepResult result = exp::run_sweep(spec);
  std::fputs(exp::render_sweep(result).c_str(), stdout);
  const std::string dir = cli.get("csv-dir").value();
  std::printf("csv: %s\ngnuplot: %s\n", exp::write_sweep_csv(dir, result).c_str(),
              exp::write_sweep_gnuplot(dir, result).c_str());
  return write_trace(trace_path);
}

void print_figure_ids(std::FILE* out) {
  std::fputs("ids:", out);
  for (const std::string& id : exp::figure_ids()) std::fprintf(out, " %s", id.c_str());
  std::fputc('\n', out);
}

int cmd_figure(int argc, const char* const* argv) {
  util::CliParser cli;
  cli.add_option({"id", "figure id (see `rtdls_cli campaign list`)", "fig03", false});
  cli.add_option({"help", "show usage", "", true});
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("rtdls_cli figure").c_str(), stderr);
    print_figure_ids(stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  const std::string id = cli.get("id").value();
  const exp::Scale scale = exp::Scale::from_env();
  try {
    exp::report_figure(exp::find_figure(id, scale));
  } catch (const std::invalid_argument&) {
    std::fprintf(stderr, "unknown figure id '%s'\n", id.c_str());
    print_figure_ids(stderr);
    return 1;
  }
  return 0;
}

// --- campaign ---------------------------------------------------------------

void add_campaign_plan_options(util::CliParser& cli) {
  cli.add_option({"figures", "comma-separated figure ids, or `paper` / `all`", "", false});
  cli.add_option({"spec", "campaign spec file (see exp/spec_io.hpp)", "", false});
  cli.add_option({"help", "show usage", "", true});
}

/// Builds the experiment plan from --spec or --figures (exactly one).
exp::Campaign campaign_from_cli(const util::CliParser& cli, const exp::Scale& scale) {
  const std::string spec_path = cli.get("spec").value_or("");
  const std::string figure_list = cli.get("figures").value_or("");
  if (!spec_path.empty() && !figure_list.empty()) {
    throw std::invalid_argument("campaign: pass --spec or --figures, not both");
  }
  if (!spec_path.empty()) {
    std::ifstream file(spec_path);
    if (!file) throw std::runtime_error("campaign: cannot open spec file " + spec_path);
    std::ostringstream text;
    text << file.rdbuf();
    return exp::Campaign(exp::parse_campaign(
        text.str(), [&scale](const std::string& id) { return exp::find_figure(id, scale); }));
  }
  if (figure_list.empty()) {
    throw std::invalid_argument("campaign: pass --figures id[,id...] (or `paper`/`all`) "
                                "or --spec file");
  }
  if (figure_list == "all") return exp::Campaign(exp::all_figures(scale));
  if (figure_list == "paper") return exp::Campaign(exp::paper_figures(scale));
  std::vector<exp::FigureSpec> figures;
  for (const std::string& id : util::split(figure_list, ',')) {
    figures.push_back(exp::find_figure(std::string(util::trim(id)), scale));
  }
  return exp::Campaign(std::move(figures));
}

/// Renders results figure by figure, writes the final CSV/gnuplot files,
/// prints the shape checks. Shared by `campaign run` and `campaign merge`,
/// so a merged fleet run is reported exactly like a single-process one.
int report_campaign(const exp::Campaign& campaign, const std::vector<exp::SweepResult>& results,
                    const std::string& dir, bool quiet) {
  int failures = 0;
  std::size_t sweep = 0;
  for (const exp::FigureSpec& figure : campaign.figures()) {
    std::printf("=== %s: %s ===\n", figure.id.c_str(), figure.title.c_str());
    const std::vector<exp::SweepResult> panels(
        results.begin() + static_cast<std::ptrdiff_t>(sweep),
        results.begin() + static_cast<std::ptrdiff_t>(sweep + figure.panels.size()));
    sweep += figure.panels.size();
    for (const exp::SweepResult& panel : panels) {
      if (!quiet) std::fputs(exp::render_sweep(panel).c_str(), stdout);
      const std::string csv = exp::write_sweep_csv(dir, panel);
      const std::string gp = exp::write_sweep_gnuplot(dir, panel);
      std::printf("csv: %s   gnuplot: %s\n", csv.c_str(), gp.c_str());
    }
    for (const exp::ShapeCheck& check : exp::evaluate_checks(panels)) {
      std::printf("[%s] %s  (%s)\n", check.passed ? "PASS" : "WARN",
                  check.description.c_str(), check.detail.c_str());
      if (!check.passed) ++failures;
    }
    std::fputc('\n', stdout);
  }
  std::fflush(stdout);
  return failures;
}

exp::CampaignOptions campaign_options(const util::CliParser& cli, util::ThreadPool& pool) {
  exp::CampaignOptions options;
  options.pool = &pool;
  options.cell_timeout_sec = cli.get_double("cell-timeout-sec", 0.0);
  options.heartbeat_path = cli.get("heartbeat").value_or("");
  install_signal_handlers();
  options.cancel = &g_interrupted;
  if (cli.get_flag("progress")) {
    options.progress = [](const exp::CellRef&, std::size_t done, std::size_t total) {
      std::fprintf(stderr, "\rcampaign: %zu/%zu cells", done, total);
      if (done == total) std::fputc('\n', stderr);
      std::fflush(stderr);
    };
  }
  return options;
}

void add_retries_option(util::CliParser& cli) {
  cli.add_option({"heartbeat",
                  "truncate-rewrite a tiny CSV progress sidecar here after every "
                  "completed cell (done/total/failed/last cell/elapsed); kept "
                  "separate from --cells so shard files stay byte-identical",
                  "", false});
  cli.add_option({"retries",
                  "re-run a failed cell up to R times, then record it in a "
                  "failed-cells report instead of aborting (default: abort)",
                  "", false});
  cli.add_option({"cell-timeout-sec",
                  "per-cell wall-clock budget in seconds; a cell over budget "
                  "counts as a failed attempt and follows the --retries path "
                  "(0 = no budget)",
                  "0", false});
}

/// Post-run bookkeeping shared by run/shard/resume: collect the helper
/// threads of any timed-out cells, and turn a SIGINT/SIGTERM cancellation
/// into the conventional 130 exit after pointing at the resume path.
/// Returns < 0 when the run was NOT interrupted.
int finish_campaign_run(const std::string& cells_path) {
  exp::join_timed_out_cells();
  if (!g_interrupted.load()) return -1;
  if (cells_path.empty()) {
    std::fprintf(stderr, "campaign: interrupted; no --cells file, so completed work was "
                         "aggregate-only and is lost - rerun to completion\n");
  } else {
    std::fprintf(stderr,
                 "campaign: interrupted; %s holds every completed cell (flushed) - finish "
                 "with `rtdls_cli campaign resume --cells %s`\n",
                 cells_path.c_str(), cells_path.c_str());
  }
  return 130;
}

/// Arms `options` for failure tolerance when --retries was passed: cells
/// that still fail land in `failed` instead of aborting the run. Without
/// --retries the historical fail-fast behavior stands.
void arm_retries(const util::CliParser& cli, exp::CampaignOptions& options,
                 std::vector<exp::FailedCell>& failed) {
  const std::string retries = cli.get("retries").value_or("");
  if (retries.empty()) return;
  options.retries = static_cast<std::size_t>(cli.get_int("retries", 0));
  options.failed = &failed;
}

/// Prints the failed-cells report and, when a cell file is in play, writes
/// the `<cells>.failed` sidecar that `campaign merge` picks up to tell
/// failed cells from never-run ones. Returns the exit code (1).
int report_failed_cells(const std::vector<exp::FailedCell>& failed,
                        const std::string& cells_path) {
  std::fprintf(stderr, "campaign: %zu cell(s) failed after retries:\n", failed.size());
  for (const exp::FailedCell& cell : failed) {
    std::fprintf(stderr, "  cell %zu (%zu attempt(s)): %s\n", cell.index, cell.attempts,
                 cell.error.c_str());
  }
  if (!cells_path.empty()) {
    const std::string sidecar = cells_path + ".failed";
    exp::write_failed_cells(sidecar, failed);
    std::fprintf(stderr,
                 "failed-cells report: %s (`campaign merge` reads it; `campaign resume "
                 "--retries R` re-runs the cells)\n",
                 sidecar.c_str());
  }
  return 1;
}

/// Loads the `<path>.failed` sidecars that exist next to the given cell
/// files (merge's missing-vs-failed distinction).
std::vector<exp::FailedCell> load_failed_sidecars(const std::vector<std::string>& paths) {
  std::vector<exp::FailedCell> failed;
  for (const std::string& path : paths) {
    const std::string sidecar = path + ".failed";
    if (!std::ifstream(sidecar).good()) continue;
    for (exp::FailedCell& cell : exp::read_failed_cells(sidecar)) {
      failed.push_back(std::move(cell));
    }
  }
  return failed;
}

std::size_t campaign_jobs(const util::CliParser& cli, const exp::Scale& scale) {
  const std::size_t jobs = static_cast<std::size_t>(cli.get_int("jobs", 0));
  return jobs != 0 ? jobs : scale.jobs;
}

int cmd_campaign_list() {
  const exp::Scale scale = exp::Scale::from_env();
  std::printf("%-22s %7s  %s\n", "id", "panels", "title");
  for (const std::string& id : exp::figure_ids()) {
    const exp::FigureSpec figure = exp::find_figure(id, scale);
    std::printf("%-22s %7zu  %s\n", figure.id.c_str(), figure.panels.size(),
                figure.title.c_str());
  }
  std::puts("(`--figures paper` = fig03..fig16, `--figures all` = + ablations)");
  return 0;
}

int cmd_campaign_run(int argc, const char* const* argv) {
  util::CliParser cli;
  add_campaign_plan_options(cli);
  cli.add_option({"csv-dir", "directory for final CSV/gnuplot output", "results", false});
  cli.add_option({"cells", "also stream per-cell results to this CSV file", "", false});
  cli.add_option({"jobs", "worker threads (default: RTDLS_JOBS/hardware)", "0", false});
  cli.add_option({"progress", "print live cell progress to stderr", "", true});
  cli.add_option({"quiet", "skip tables/charts; print file paths and checks only", "", true});
  add_retries_option(cli);
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("rtdls_cli campaign run").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  const exp::Scale scale = exp::Scale::from_env();
  const exp::Campaign campaign = campaign_from_cli(cli, scale);
  util::ThreadPool pool(campaign_jobs(cli, scale));
  exp::CampaignOptions options = campaign_options(cli, pool);
  std::vector<exp::FailedCell> failed;
  arm_retries(cli, options, failed);

  exp::AggregateSink aggregate(campaign);
  std::vector<exp::ResultSink*> sinks{&aggregate};
  std::unique_ptr<exp::CellCsvSink> cells;
  const std::string cells_path = cli.get("cells").value_or("");
  if (!cells_path.empty()) {
    cells = std::make_unique<exp::CellCsvSink>(cells_path);
    sinks.push_back(cells.get());
  }
  exp::TeeSink tee(sinks);

  const auto wall_start = std::chrono::steady_clock::now();
  exp::run_campaign(campaign, options, tee);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  if (const int code = finish_campaign_run(cells_path); code >= 0) return code;
  if (!failed.empty()) {
    // The aggregate is incomplete; report the gaps instead of charts built
    // on zero-filled cells. A --cells file keeps everything that finished.
    return report_failed_cells(failed, cells_path);
  }
  const int failures = report_campaign(campaign, aggregate.take(wall),
                                       cli.get("csv-dir").value(), cli.get_flag("quiet"));
  std::printf("campaign: %zu cells in %.3fs", campaign.cell_count(), wall);
  if (failures != 0) std::printf(", %d shape check(s) below expectation at this scale", failures);
  std::fputc('\n', stdout);
  return 0;
}

int cmd_campaign_shard(int argc, const char* const* argv) {
  util::CliParser cli;
  add_campaign_plan_options(cli);
  cli.add_option({"shard", "this machine's stripe i/m of the cell queue (0-based)", "", false});
  cli.add_option({"cells", "output per-cell CSV file for this shard", "", false});
  cli.add_option({"jobs", "worker threads (default: RTDLS_JOBS/hardware)", "0", false});
  cli.add_option({"progress", "print live cell progress to stderr", "", true});
  add_retries_option(cli);
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("rtdls_cli campaign shard").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  const std::string shard_text = cli.get("shard").value_or("");
  const std::string cells_path = cli.get("cells").value_or("");
  if (shard_text.empty() || cells_path.empty()) {
    throw std::invalid_argument("campaign shard: --shard i/m and --cells file are required");
  }
  const exp::Scale scale = exp::Scale::from_env();
  const exp::Campaign campaign = campaign_from_cli(cli, scale);
  util::ThreadPool pool(campaign_jobs(cli, scale));
  exp::CampaignOptions options = campaign_options(cli, pool);
  options.shard = exp::parse_shard(shard_text);
  std::vector<exp::FailedCell> failed;
  arm_retries(cli, options, failed);

  exp::CellCsvSink sink(cells_path);
  const auto wall_start = std::chrono::steady_clock::now();
  exp::run_campaign(campaign, options, sink);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  if (const int code = finish_campaign_run(cells_path); code >= 0) return code;
  const std::size_t total = campaign.cell_count();
  const std::size_t mine =
      total / options.shard.count + (options.shard.index < total % options.shard.count ? 1 : 0);
  std::printf("shard %zu/%zu: %zu of %zu cells -> %s (%.3fs)\n", options.shard.index,
              options.shard.count, mine, total, cells_path.c_str(), wall);
  if (!failed.empty()) return report_failed_cells(failed, cells_path);
  return 0;
}

int cmd_campaign_resume(int argc, const char* const* argv) {
  util::CliParser cli;
  add_campaign_plan_options(cli);
  cli.add_option({"cells", "existing cell CSV to diff against the plan and extend", "", false});
  cli.add_option({"jobs", "worker threads (default: RTDLS_JOBS/hardware)", "0", false});
  cli.add_option({"progress", "print live cell progress to stderr", "", true});
  add_retries_option(cli);
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("rtdls_cli campaign resume").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  const std::string cells_path = cli.get("cells").value_or("");
  if (cells_path.empty()) {
    throw std::invalid_argument("campaign resume: --cells file is required");
  }
  const exp::Scale scale = exp::Scale::from_env();
  const exp::Campaign campaign = campaign_from_cli(cli, scale);

  // Diff the existing file against the plan (validating its rows like a
  // merge would) and re-run exactly the missing cells, appending them.
  const std::vector<std::size_t> missing = exp::missing_cells(campaign, {cells_path});
  const std::size_t total = campaign.cell_count();
  if (missing.empty()) {
    std::printf("%s already covers all %zu cells; nothing to resume\n", cells_path.c_str(),
                total);
    return 0;
  }
  std::printf("%s covers %zu of %zu cells; resuming %zu missing\n", cells_path.c_str(),
              total - missing.size(), total, missing.size());

  util::ThreadPool pool(campaign_jobs(cli, scale));
  exp::CampaignOptions options = campaign_options(cli, pool);
  options.cells = &missing;
  std::vector<exp::FailedCell> failed;
  arm_retries(cli, options, failed);
  exp::CellCsvSink sink(cells_path, /*append=*/true);
  const auto wall_start = std::chrono::steady_clock::now();
  exp::run_campaign(campaign, options, sink);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  if (const int code = finish_campaign_run(cells_path); code >= 0) return code;
  if (!failed.empty()) {
    std::printf("resumed %zu of %zu cells in %.3fs\n", missing.size() - failed.size(),
                missing.size(), wall);
    return report_failed_cells(failed, cells_path);
  }
  // Coverage check: the resumed file must now merge like a complete run.
  const std::vector<std::size_t> still_missing = exp::missing_cells(campaign, {cells_path});
  if (!still_missing.empty()) {
    throw std::runtime_error("campaign resume: " + std::to_string(still_missing.size()) +
                             " cells still missing after resume (first: cell " +
                             std::to_string(still_missing.front()) + ")");
  }
  std::printf("resumed %zu cells in %.3fs; %s now complete (%zu cells) - merge with "
              "`rtdls_cli campaign merge --cells %s`\n",
              missing.size(), wall, cells_path.c_str(), total, cells_path.c_str());
  return 0;
}

int cmd_campaign_merge(int argc, const char* const* argv) {
  util::CliParser cli;
  add_campaign_plan_options(cli);
  cli.add_option({"cells", "comma-separated shard cell files (every shard)", "", false});
  cli.add_option({"csv-dir", "directory for final CSV/gnuplot output", "results", false});
  cli.add_option({"quiet", "skip tables/charts; print file paths and checks only", "", true});
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("rtdls_cli campaign merge").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  const std::string cells = cli.get("cells").value_or("");
  if (cells.empty()) {
    throw std::invalid_argument("campaign merge: --cells file[,file...] is required");
  }
  const exp::Scale scale = exp::Scale::from_env();
  const exp::Campaign campaign = campaign_from_cli(cli, scale);
  std::vector<std::string> paths;
  for (const std::string& path : util::split(cells, ',')) {
    paths.push_back(std::string(util::trim(path)));
  }
  // Sidecar failed-cells reports written by --retries runs let coverage
  // errors tell failed cells from never-run ones.
  const std::vector<exp::FailedCell> failed = load_failed_sidecars(paths);
  const std::vector<exp::SweepResult> results =
      exp::merge_cell_files(campaign, paths, failed.empty() ? nullptr : &failed);
  const int failures = report_campaign(campaign, results, cli.get("csv-dir").value(),
                                       cli.get_flag("quiet"));
  std::printf("merged %zu cells from %zu shard file(s)", campaign.cell_count(), paths.size());
  if (failures != 0) std::printf(", %d shape check(s) below expectation at this scale", failures);
  std::fputc('\n', stdout);
  return 0;
}

int cmd_campaign(int argc, const char* const* argv) {
  const char* verb = argc >= 2 ? argv[1] : "";
  if (std::strcmp(verb, "list") == 0) return cmd_campaign_list();
  if (std::strcmp(verb, "run") == 0) return cmd_campaign_run(argc - 1, argv + 1);
  if (std::strcmp(verb, "shard") == 0) return cmd_campaign_shard(argc - 1, argv + 1);
  if (std::strcmp(verb, "resume") == 0) return cmd_campaign_resume(argc - 1, argv + 1);
  if (std::strcmp(verb, "merge") == 0) return cmd_campaign_merge(argc - 1, argv + 1);
  std::fputs(
      "usage: rtdls_cli campaign <verb> [options]\n"
      "verbs:\n"
      "  list    the figure inventory (ids usable with --figures / spec `use =`)\n"
      "  run     execute a whole campaign: final CSVs, charts, shape checks\n"
      "  shard   execute stripe i/m of the cell queue into a per-cell CSV\n"
      "  resume  diff a cell CSV against the plan and re-run only missing cells\n"
      "  merge   fold every shard's cell file into the final CSVs/checks\n"
      "plans: --figures fig03,fig08 | --figures paper | --figures all | --spec plan.spec\n",
      stderr);
  return verb[0] == '\0' ? 1 : (std::strcmp(verb, "--help") == 0 ? 0 : 1);
}

// --- daemon / service -------------------------------------------------------

std::string socket_from_cli(const util::CliParser& cli) {
  const std::string path = cli.get("socket").value_or("");
  if (path.empty()) throw std::invalid_argument("--socket path is required");
  return path;
}

int cmd_daemon(int argc, const char* const* argv) {
  util::CliParser cli;
  cli.add_option({"socket", "unix socket path to listen on", "", false});
  cli.add_option({"algorithm", "admission algorithm run by every shard", "EDF-DLT", false});
  cli.add_option({"nodes", "cluster size N per shard", "16", false});
  cli.add_option({"cms", "unit transmission cost", "1", false});
  cli.add_option({"cps", "unit processing cost", "100", false});
  cli.add_option({"het-profile",
                  "per-node speed profile key (same keys as `simulate --het-profile`)", "",
                  false});
  add_index_option(cli);
  cli.add_option({"shards", "independent admission shards (one cluster each)", "4", false});
  cli.add_option({"workers", "connection worker threads", "4", false});
  cli.add_option({"deadline-ms", "default per-request wall-clock budget", "2000", false});
  cli.add_option({"snapshot",
                  "snapshot file written on shutdown (and the default target for "
                  "`rtdls_cli snapshot`)",
                  "", false});
  cli.add_option({"restore",
                  "restore shards from this snapshot file at start (its metadata "
                  "overrides --algorithm/--nodes/--shards)",
                  "", false});
  cli.add_option({"stateless",
                  "run the stateless Figure-2 test per admit instead of warm "
                  "incremental sessions",
                  "", true});
  add_trace_option(cli);
  cli.add_option({"help", "show usage", "", true});
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("rtdls_cli daemon").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  // Daemon lines go through the leveled logger (RTDLS_LOG routes them); an
  // operator who did not set a level still gets the startup banner.
  if (std::getenv("RTDLS_LOG") == nullptr) {
    util::Logger::instance().set_level(util::LogLevel::kInfo);
  }
  const std::string trace_path = arm_trace(cli);

  svc::DaemonConfig config;
  config.socket_path = socket_from_cli(cli);
  config.algorithm = cli.get("algorithm").value_or("EDF-DLT");
  config.params.node_count = static_cast<std::size_t>(cli.get_int("nodes", 16));
  config.params.cms = cli.get_double("cms", 1.0);
  config.params.cps = cli.get_double("cps", 100.0);
  if (const std::string key = cli.get("het-profile").value_or(""); !key.empty()) {
    config.params.speed_profile = std::make_shared<const cluster::SpeedProfile>(
        cluster::parse_speed_profile(key, config.params.node_count, config.params.cps));
  }
  config.params.index_backend = index_backend_from_cli(cli);
  config.shards = static_cast<std::size_t>(cli.get_int("shards", 4));
  config.workers = static_cast<std::size_t>(cli.get_int("workers", 4));
  config.default_deadline_ms = static_cast<std::uint32_t>(cli.get_int("deadline-ms", 2000));
  config.snapshot_path = cli.get("snapshot").value_or("");
  config.restore_path = cli.get("restore").value_or("");
  config.incremental = !cli.get_flag("stateless");

  svc::Daemon daemon(std::move(config));
  install_signal_handlers();
  daemon.start();
  const svc::DaemonConfig& live = daemon.config();
  RTDLS_LOG(kInfo) << "rtdlsd: " << live.algorithm << " on " << live.socket_path << " - "
                   << daemon.shard_count() << " shard(s) x " << live.params.node_count
                   << " nodes, " << live.workers << " worker(s), "
                   << (live.incremental ? "incremental" : "stateless") << " sessions, "
                   << cluster::index_backend_name(cluster::resolve_index_backend(
                          live.params.index_backend, live.params.node_count))
                   << " index";
  if (!live.restore_path.empty()) {
    RTDLS_LOG(kInfo) << "rtdlsd: restored " << daemon.shard_count() << " shard(s) from "
                     << live.restore_path;
  }
  RTDLS_LOG(kInfo) << "rtdlsd: " << util::build_description();

  while (!daemon.stop_requested() && !g_interrupted.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  daemon.stop();  // joins workers and writes the final snapshot (if configured)
  RTDLS_LOG(kInfo) << "rtdlsd: stopped - " << daemon.counters().summary();
  if (!live.snapshot_path.empty()) {
    RTDLS_LOG(kInfo) << "rtdlsd: final snapshot at " << live.snapshot_path
                     << " (restart with --restore " << live.snapshot_path << " to resume)";
  }
  return write_trace(trace_path);
}

void add_client_options(util::CliParser& cli) {
  cli.add_option({"socket", "daemon unix socket path", "", false});
  cli.add_option({"timeout-ms", "client-side reply timeout", "5000", false});
  cli.add_option({"help", "show usage", "", true});
}

svc::Client make_client(const util::CliParser& cli) {
  return svc::Client(socket_from_cli(cli), cli.get_int("timeout-ms", 5000));
}

int cmd_admit(int argc, const char* const* argv) {
  util::CliParser cli;
  add_client_options(cli);
  cli.add_option({"shard", "target shard index", "0", false});
  cli.add_option({"id", "task id (unique within the shard)", "1", false});
  cli.add_option({"arrival", "arrival time (floored at the shard clock)", "0", false});
  cli.add_option({"sigma", "task data size", "200", false});
  cli.add_option({"deadline", "relative deadline", "5000", false});
  cli.add_option({"user-nodes", "fixed node count n (0 = algorithm decides)", "0", false});
  cli.add_option({"deadline-ms",
                  "per-request wall-clock budget override (0 = daemon default)", "0", false});
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("rtdls_cli admit").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  svc::Client client = make_client(cli);
  svc::AdmitRequest request;
  request.shard = static_cast<std::uint32_t>(cli.get_int("shard", 0));
  request.deadline_ms = static_cast<std::uint32_t>(cli.get_int("deadline-ms", 0));
  request.task.id = static_cast<cluster::TaskId>(cli.get_uint64("id", 1));
  request.task.arrival = cli.get_double("arrival", 0.0);
  request.task.sigma = cli.get_double("sigma", 200.0);
  request.task.rel_deadline = cli.get_double("deadline", 500.0);
  request.task.user_nodes = cli.get_uint64("user-nodes", 0);
  const svc::AdmitReply reply = client.admit(request);
  if (reply.accepted) {
    std::printf("accepted: task %llu on %llu node(s), est completion %.6g "
                "(decision %llu, %llu waiting)\n",
                static_cast<unsigned long long>(request.task.id),
                static_cast<unsigned long long>(reply.nodes), reply.est_completion,
                static_cast<unsigned long long>(reply.decision_seq),
                static_cast<unsigned long long>(reply.waiting));
    return 0;
  }
  std::printf("rejected: task %llu - %s", static_cast<unsigned long long>(request.task.id),
              dlt::infeasibility_name(static_cast<dlt::Infeasibility>(reply.reason)));
  if (reply.blocking_task != cluster::kNoTask) {
    std::printf(" (blocked by task %llu)",
                static_cast<unsigned long long>(reply.blocking_task));
  }
  std::printf(" (decision %llu, %llu waiting)\n",
              static_cast<unsigned long long>(reply.decision_seq),
              static_cast<unsigned long long>(reply.waiting));
  return 2;  // distinct from usage/transport errors: the daemon said no
}

int cmd_commit(int argc, const char* const* argv) {
  util::CliParser cli;
  add_client_options(cli);
  cli.add_option({"shard", "target shard index", "0", false});
  cli.add_option({"id", "waiting task id to commit", "1", false});
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("rtdls_cli commit").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  svc::Client client = make_client(cli);
  const svc::CommitReply reply =
      client.commit(static_cast<std::uint32_t>(cli.get_int("shard", 0)),
                    static_cast<cluster::TaskId>(cli.get_uint64("id", 1)));
  std::printf("committed at %.6g (%llu earlier-due plan(s) committed alongside)\n",
              reply.committed_at, static_cast<unsigned long long>(reply.also_committed));
  return 0;
}

int cmd_cancel(int argc, const char* const* argv) {
  util::CliParser cli;
  add_client_options(cli);
  cli.add_option({"shard", "target shard index", "0", false});
  cli.add_option({"id", "waiting task id to cancel", "1", false});
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("rtdls_cli cancel").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  svc::Client client = make_client(cli);
  client.cancel(static_cast<std::uint32_t>(cli.get_int("shard", 0)),
                static_cast<cluster::TaskId>(cli.get_uint64("id", 1)));
  std::puts("cancelled");
  return 0;
}

int cmd_status(int argc, const char* const* argv) {
  util::CliParser cli;
  add_client_options(cli);
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("rtdls_cli status").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  svc::Client client = make_client(cli);
  const svc::StatusReply status = client.status();
  std::printf("build:     %s\n", status.build.c_str());
  std::printf("algorithm: %s (%llu nodes/shard, %llu worker(s))\n", status.algorithm.c_str(),
              static_cast<unsigned long long>(status.node_count),
              static_cast<unsigned long long>(status.workers));
  std::printf("service:   %s\n", status.counters.summary().c_str());
  if (status.extended) {
    std::printf("uptime:    %.3fs, queue depth %llu\n",
                static_cast<double>(status.uptime_ms) / 1000.0,
                static_cast<unsigned long long>(status.queue_depth));
  }
  for (const svc::ShardStatus& shard : status.shards) {
    std::printf("shard %u: now=%.6g waiting=%llu admits=%llu (%llu accepted, %llu rejected) "
                "committed=%llu cancelled=%llu session=%lluB (peak %lluB, dense %lluB)\n",
                shard.shard, shard.now, static_cast<unsigned long long>(shard.waiting),
                static_cast<unsigned long long>(shard.admits),
                static_cast<unsigned long long>(shard.accepted),
                static_cast<unsigned long long>(shard.rejected),
                static_cast<unsigned long long>(shard.committed),
                static_cast<unsigned long long>(shard.cancelled),
                static_cast<unsigned long long>(shard.session_bytes),
                static_cast<unsigned long long>(shard.peak_session_bytes),
                static_cast<unsigned long long>(shard.session_dense_bytes));
    if (status.extended && shard.shard < status.shard_latency.size()) {
      const svc::ShardLatency& latency = status.shard_latency[shard.shard];
      if (latency.count > 0) {
        std::printf("  latency: %llu request(s), p50=%.1fus p90=%.1fus p99=%.1fus "
                    "max=%.1fus\n",
                    static_cast<unsigned long long>(latency.count), latency.p50_us,
                    latency.p90_us, latency.p99_us, latency.max_us);
      }
    }
  }
  return 0;
}

int cmd_stats(int argc, const char* const* argv) {
  util::CliParser cli;
  add_client_options(cli);
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("rtdls_cli stats").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  svc::Client client = make_client(cli);
  const svc::MetricsReply reply = client.metrics();
  std::fputs(reply.text.c_str(), stdout);
  return 0;
}

int cmd_snapshot(int argc, const char* const* argv) {
  util::CliParser cli;
  add_client_options(cli);
  cli.add_option({"out",
                  "server-side snapshot path (empty = the daemon's --snapshot default)", "",
                  false});
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("rtdls_cli snapshot").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  svc::Client client = make_client(cli);
  const svc::SnapshotReply reply = client.snapshot(cli.get("out").value_or(""));
  std::printf("snapshot written: %llu shard(s), %llu bytes\n",
              static_cast<unsigned long long>(reply.shards),
              static_cast<unsigned long long>(reply.bytes));
  return 0;
}

int cmd_shutdown(int argc, const char* const* argv) {
  util::CliParser cli;
  add_client_options(cli);
  if (!cli.parse(argc, argv) || cli.get_flag("help")) {
    std::fputs(cli.usage("rtdls_cli shutdown").c_str(), stderr);
    return cli.get_flag("help") ? 0 : 1;
  }
  svc::Client client = make_client(cli);
  client.shutdown();
  std::puts("shutdown acknowledged");
  return 0;
}

void print_usage() {
  std::fputs(
      "usage: rtdls_cli <command> [options]\n"
      "commands:\n"
      "  algorithms   list available scheduling algorithms\n"
      "  generate     generate a workload trace CSV\n"
      "  simulate     run one algorithm over a trace or generated workload\n"
      "  sweep        reject-ratio load sweep for a set of algorithms\n"
      "  figure       reproduce a paper figure / ablation by id\n"
      "  campaign     run/shard/merge multi-figure experiment plans\n"
      "  daemon       serve admission control over a unix socket (rtdlsd)\n"
      "  admit | commit | cancel | status | stats | snapshot | shutdown\n"
      "               client requests against a running daemon (--socket);\n"
      "               stats prints the daemon's Prometheus-style metrics\n"
      "  --version    print the build description (flags, sanitizers, SIMD)\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 1;
  }
  const std::string command = argv[1];
  try {
    if (command == "--version" || command == "version") {
      std::printf("%s (protocol v%u)\n", util::build_description().c_str(),
                  static_cast<unsigned>(svc::kProtocolVersion));
      return 0;
    }
    if (command == "algorithms") return cmd_algorithms();
    if (command == "generate") return cmd_generate(argc - 1, argv + 1);
    if (command == "simulate") return cmd_simulate(argc - 1, argv + 1);
    if (command == "sweep") return cmd_sweep(argc - 1, argv + 1);
    if (command == "figure") return cmd_figure(argc - 1, argv + 1);
    if (command == "campaign") return cmd_campaign(argc - 1, argv + 1);
    if (command == "daemon") return cmd_daemon(argc - 1, argv + 1);
    if (command == "admit") return cmd_admit(argc - 1, argv + 1);
    if (command == "commit") return cmd_commit(argc - 1, argv + 1);
    if (command == "cancel") return cmd_cancel(argc - 1, argv + 1);
    if (command == "status") return cmd_status(argc - 1, argv + 1);
    if (command == "stats") return cmd_stats(argc - 1, argv + 1);
    if (command == "snapshot") return cmd_snapshot(argc - 1, argv + 1);
    if (command == "shutdown") return cmd_shutdown(argc - 1, argv + 1);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  print_usage();
  return 1;
}
