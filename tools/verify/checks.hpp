// The three rtdls-verify checks, shared by the rtdls_tidy driver and the
// fixture test harness.
//
//  * rtdls-no-raw-float-compare: epsilon tolerances must be anchored in
//    util/fp. Flags (a) float literals of epsilon magnitude (0 < |v| <=
//    1e-5) inside comparison statements, (b) ==/!= with a float-literal
//    operand, and (c) epsilon-named constants (kEps, *_tolerance, ...)
//    used in comparisons without an fp:: qualifier. Files matching the fp
//    allowlist (default "util/fp") are exempt: that is where the anchored
//    comparators and the named tolerances live.
//
//  * rtdls-hot-path-alloc: functions annotated RTDLS_HOT, and every
//    function reachable from one through calls resolvable inside the
//    scanned file set, must not allocate: no new/delete, no
//    malloc-family, no make_unique/make_shared/to_string, no local
//    owning-container or std::string declarations or temporaries, and no
//    growth calls on such locals. Growth on *member* scratch
//    (resize/reserve/push_back on fields) is legal - the amortized
//    scratch-reuse contract from PRs 5/6.
//
//  * rtdls-lock-discipline: mutex members are acquired through guard
//    types only - a guard being any std guard or a class holding a mutex
//    reference member - so naked lock()/unlock() on a value-typed mutex
//    member is flagged; and guards must acquire mutexes in
//    non-decreasing RTDLS_LOCK_LEVEL order within a function body
//    (acquiring a lower level while a higher one is held is an
//    inversion). Leveled mutex member names must be globally unique so
//    call sites resolve unambiguously; duplicates are themselves flagged.
//
// The engine is the token scanner in lexer.hpp - see the precision notes
// there. tools/verify/plugin/ holds the clang-tidy plugin implementing
// the same checks on the real AST for toolchains with Clang dev headers.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace rtdls::verify {

inline constexpr const char* kCheckFloatCompare = "rtdls-no-raw-float-compare";
inline constexpr const char* kCheckHotAlloc = "rtdls-hot-path-alloc";
inline constexpr const char* kCheckLockDiscipline = "rtdls-lock-discipline";

struct Diagnostic {
  std::string file;
  int line = 0;
  int col = 0;
  std::string message;
  std::string check;  ///< one of the kCheck* names

  /// clang-tidy-compatible rendering: "file:line:col: warning: msg [check]".
  std::string render() const;

  bool operator==(const Diagnostic&) const = default;
};

class Analyzer {
 public:
  /// Registers a file for analysis (content is tokenized immediately).
  void add_file(const std::string& path, const std::string& content);

  /// Reads and registers a file from disk; returns false when unreadable.
  bool add_file_from_disk(const std::string& path);

  /// Path substrings exempt from rtdls-no-raw-float-compare. Default:
  /// {"util/fp"}.
  void set_fp_allowlist(std::vector<std::string> substrings);

  /// Runs the named checks (all three when empty) over every registered
  /// file. Diagnostics are sorted by (file, line, col, check).
  std::vector<Diagnostic> run(const std::set<std::string>& checks = {});

 private:
  struct File {
    std::string path;
    std::vector<Token> tokens;
  };

  // --- cross-file symbol tables (pass 1) ---------------------------------
  struct MutexDecl {
    std::string name;
    std::string enclosing_class;  ///< "" at namespace scope
    std::string file;
    int line = 0;
    bool is_reference = false;  ///< guard-internal handle, not an owner
    int level = -1;             ///< RTDLS_LOCK_LEVEL, -1 when undeclared
  };

  struct FunctionDef {
    std::string name;       ///< bare name
    std::string qualified;  ///< Class::name when resolvable
    std::size_t file_index = 0;
    std::size_t body_begin = 0;  ///< token index of '{'
    std::size_t body_end = 0;    ///< token index of matching '}'
    int line = 0;
    bool hot = false;            ///< annotated or reached from an annotated fn
    std::string hot_via;         ///< root annotated function for diagnostics
  };

  void collect_symbols();
  void propagate_hot();
  void check_float_compare(const File& file, std::vector<Diagnostic>& out) const;
  void check_hot_alloc(const FunctionDef& fn, std::vector<Diagnostic>& out) const;
  void check_lock_discipline(const File& file, std::vector<Diagnostic>& out) const;
  void check_lock_levels_unique(std::vector<Diagnostic>& out) const;

  bool fp_allowlisted(const std::string& path) const;

  std::vector<File> files_;
  std::vector<std::string> fp_allowlist_{"util/fp"};

  std::vector<MutexDecl> mutexes_;
  std::set<std::string> value_mutex_names_;
  std::set<std::string> reference_mutex_names_;
  std::map<std::string, int> mutex_levels_;  ///< leveled members by name
  std::set<std::string> guard_classes_;      ///< classes with a mutex& member
  std::vector<FunctionDef> functions_;
  std::set<std::string> hot_declared_names_;  ///< RTDLS_HOT on a prototype
  bool symbols_collected_ = false;
};

}  // namespace rtdls::verify
