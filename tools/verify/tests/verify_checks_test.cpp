// Fixture harness for the rtdls-verify checks: runs the analyzer over the
// known-good / known-bad snippets in tests/fixtures/ and asserts the exact
// diagnostics (check name, line, message substance). The known-bad
// fixtures annotate their expected lines in comments; keep them in sync.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "checks.hpp"

namespace {

using rtdls::verify::Analyzer;
using rtdls::verify::Diagnostic;
using rtdls::verify::kCheckFloatCompare;
using rtdls::verify::kCheckHotAlloc;
using rtdls::verify::kCheckLockDiscipline;

std::string fixture_path(const std::string& name) {
  return std::string(RTDLS_VERIFY_FIXTURE_DIR) + "/" + name;
}

std::vector<Diagnostic> analyze(const std::vector<std::string>& fixtures,
                                const std::set<std::string>& checks = {}) {
  Analyzer analyzer;
  for (const std::string& name : fixtures) {
    EXPECT_TRUE(analyzer.add_file_from_disk(fixture_path(name)))
        << "unreadable fixture " << name;
  }
  return analyzer.run(checks);
}

testing::AssertionResult has_diag(const std::vector<Diagnostic>& diags,
                                  const std::string& check, int line,
                                  const std::string& message_fragment) {
  for (const Diagnostic& d : diags) {
    if (d.check == check && d.line == line &&
        d.message.find(message_fragment) != std::string::npos) {
      return testing::AssertionSuccess();
    }
  }
  auto result = testing::AssertionFailure()
                << "no diagnostic [" << check << "] at line " << line
                << " containing '" << message_fragment << "'; got:";
  for (const Diagnostic& d : diags) result << "\n  " << d.render();
  return result;
}

// --- rtdls-no-raw-float-compare ---------------------------------------------

TEST(FloatCompareCheck, BadFixtureFiresOncePerConstruct) {
  const auto diags = analyze({"float_compare_bad.cpp"});
  for (const Diagnostic& d : diags) EXPECT_EQ(d.check, kCheckFloatCompare);
  EXPECT_TRUE(has_diag(diags, kCheckFloatCompare, 6, "raw epsilon literal 1e-9"));
  EXPECT_TRUE(has_diag(diags, kCheckFloatCompare, 10, "raw == against a float literal"));
  EXPECT_TRUE(has_diag(diags, kCheckFloatCompare, 16, "epsilon-named constant 'kEps'"));
  EXPECT_TRUE(has_diag(diags, kCheckFloatCompare, 20, "raw epsilon literal 1e-6"));
  EXPECT_EQ(diags.size(), 4u);
}

TEST(FloatCompareCheck, GoodFixtureIsClean) {
  const auto diags = analyze({"float_compare_good.cpp"});
  EXPECT_TRUE(diags.empty()) << diags.front().render();
}

TEST(FloatCompareCheck, FpAllowlistExemptsTheAnchorHeader) {
  Analyzer analyzer;
  analyzer.add_file("src/util/fp.hpp",
                    "constexpr bool after(double a, double b, double tol) {\n"
                    "  return a > b + tol;\n"
                    "}\n");
  EXPECT_TRUE(analyzer.run({kCheckFloatCompare}).empty());
}

TEST(FloatCompareCheck, DeclarationAloneIsNotACombination) {
  Analyzer analyzer;
  analyzer.add_file("src/x.cpp", "constexpr double kTinyEps = 1e-9;\n");
  EXPECT_TRUE(analyzer.run({kCheckFloatCompare}).empty());
}

// --- rtdls-hot-path-alloc ---------------------------------------------------

TEST(HotAllocCheck, BadFixtureFiresIncludingReachability) {
  const auto diags = analyze({"hot_alloc_bad.cpp"});
  for (const Diagnostic& d : diags) EXPECT_EQ(d.check, kCheckHotAlloc);
  EXPECT_TRUE(has_diag(diags, kCheckHotAlloc, 7, "local std::vector"));
  EXPECT_TRUE(has_diag(diags, kCheckHotAlloc, 8, "tmp.push_back() grows a local"));
  EXPECT_TRUE(has_diag(diags, kCheckHotAlloc, 9, "operator new"));
  EXPECT_TRUE(has_diag(diags, kCheckHotAlloc, 18, "local std::string"));
  EXPECT_TRUE(has_diag(diags, kCheckHotAlloc, 18, "reachable from RTDLS_HOT 'hot_kernel'"));
  EXPECT_EQ(diags.size(), 4u);
}

TEST(HotAllocCheck, GoodFixtureMemberScratchIsClean) {
  const auto diags = analyze({"hot_alloc_good.cpp"});
  EXPECT_TRUE(diags.empty()) << diags.front().render();
}

TEST(HotAllocCheck, HotAnnotationOnPrototypeCoversTheDefinition) {
  Analyzer analyzer;
  analyzer.add_file("src/a.hpp", "RTDLS_HOT double kernel(unsigned long n);\n");
  analyzer.add_file("src/a.cpp",
                    "double kernel(unsigned long n) {\n"
                    "  std::vector<double> local(n);\n"
                    "  return local[0];\n"
                    "}\n");
  const auto diags = analyzer.run({kCheckHotAlloc});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].file, "src/a.cpp");
  EXPECT_EQ(diags[0].line, 2);
}

// --- rtdls-lock-discipline --------------------------------------------------

TEST(LockDisciplineCheck, BadFixtureNakedCallsAndInversion) {
  const auto diags = analyze({"lock_discipline_bad.cpp"});
  for (const Diagnostic& d : diags) EXPECT_EQ(d.check, kCheckLockDiscipline);
  EXPECT_TRUE(has_diag(diags, kCheckLockDiscipline, 7, "naked lock()"));
  EXPECT_TRUE(has_diag(diags, kCheckLockDiscipline, 8, "naked unlock()"));
  EXPECT_TRUE(has_diag(diags, kCheckLockDiscipline, 15,
                       "lock-order inversion: acquiring 'state_mutex' (level 20) "
                       "while holding 'pool_mutex' (level 40"));
  EXPECT_EQ(diags.size(), 3u);
}

TEST(LockDisciplineCheck, GoodFixtureGuardsAndOrderAreClean) {
  const auto diags = analyze({"lock_discipline_good.cpp"});
  EXPECT_TRUE(diags.empty()) << diags.front().render();
}

TEST(LockDisciplineCheck, DuplicateLeveledNamesAreThemselvesFlagged) {
  Analyzer analyzer;
  analyzer.add_file("src/a.hpp",
                    "class A { std::mutex work_mutex RTDLS_LOCK_LEVEL(10); };\n");
  analyzer.add_file("src/b.hpp",
                    "class B { std::mutex work_mutex RTDLS_LOCK_LEVEL(20); };\n");
  const auto diags = analyzer.run({kCheckLockDiscipline});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("not globally unique"), std::string::npos);
}

TEST(LockDisciplineCheck, EqualLevelSequentialAcquisitionIsLegal) {
  // The daemon snapshot path takes every shard lock (same level) together;
  // only strictly-descending acquisition is an inversion.
  Analyzer analyzer;
  analyzer.add_file("src/snap.cpp",
                    "class Snap {\n"
                    " public:\n"
                    "  void all() {\n"
                    "    std::unique_lock<std::timed_mutex> a(shard_mutex);\n"
                    "    std::unique_lock<std::timed_mutex> b(shard_mutex);\n"
                    "  }\n"
                    " private:\n"
                    "  std::timed_mutex shard_mutex RTDLS_LOCK_LEVEL(20);\n"
                    "};\n");
  EXPECT_TRUE(analyzer.run({kCheckLockDiscipline}).empty());
}

// --- engine plumbing --------------------------------------------------------

TEST(Engine, DiagnosticRenderIsClangTidyCompatible) {
  const Diagnostic d{"src/x.cpp", 12, 3, "message", kCheckHotAlloc};
  EXPECT_EQ(d.render(), "src/x.cpp:12:3: warning: message [rtdls-hot-path-alloc]");
}

TEST(Engine, EpsilonNameSegmentation) {
  using rtdls::verify::is_epsilon_name;
  EXPECT_TRUE(is_epsilon_name("kEps"));
  EXPECT_TRUE(is_epsilon_name("kTimeTolerance"));
  EXPECT_TRUE(is_epsilon_name("deadline_eps"));
  EXPECT_TRUE(is_epsilon_name("EPSILON"));
  EXPECT_FALSE(is_epsilon_name("total"));
  EXPECT_FALSE(is_epsilon_name("topology"));
  EXPECT_FALSE(is_epsilon_name("deadline"));
}

TEST(Engine, CheckFilterRunsOnlyRequestedChecks) {
  const auto diags = analyze({"float_compare_bad.cpp", "lock_discipline_bad.cpp"},
                             {kCheckLockDiscipline});
  EXPECT_EQ(diags.size(), 3u);
  for (const Diagnostic& d : diags) EXPECT_EQ(d.check, kCheckLockDiscipline);
}

}  // namespace
