// Known-good fixture for rtdls-hot-path-alloc: member-scratch growth (the
// amortized reuse contract), reads through references, and allocation in
// cold functions must all pass clean.

class Batch {
 public:
  RTDLS_HOT double kernel(unsigned long n) {
    scratch_.resize(n);  // member scratch: amortized growth is the contract
    double acc = 0.0;
    for (unsigned long i = 0; i < n; ++i) acc += scratch_[i];
    return acc;
  }

  RTDLS_HOT double reads_only(const std::vector<double>& column) const {
    return column.empty() ? 0.0 : column[0];  // reference parameter: no alloc
  }

 private:
  std::vector<double> scratch_;
};

// Cold path: allocation is fine outside RTDLS_HOT reachability.
double cold_setup(unsigned long n) {
  std::vector<double> staging(n, 0.0);
  staging.push_back(1.0);
  return staging[0];
}
