// Known-bad fixture for rtdls-hot-path-alloc. Never compiled, only
// analyzed; the harness asserts line numbers, so keep edits append-only.

double reachable_helper(double x);

RTDLS_HOT double hot_kernel(const double* xs, unsigned long n) {
  std::vector<double> tmp;      // line 7: local owning container
  tmp.push_back(xs[0]);         // line 8: growth on a local container
  double* raw = new double[n];  // line 9: operator new
  double acc = raw[0];
  for (unsigned long i = 0; i < n; ++i) acc += reachable_helper(xs[i]);
  return acc + tmp.size();
}

// Not annotated itself, but called from hot_kernel: reachable, so the
// string construction below is a finding too.
double reachable_helper(double x) {
  std::string label("x");  // line 18: std::string in a reachable function
  return x + label.size();
}
