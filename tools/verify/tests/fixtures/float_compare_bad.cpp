// Known-bad fixture for rtdls-no-raw-float-compare. Never compiled, only
// analyzed: each construct below must produce exactly one diagnostic, and
// the harness asserts the line numbers, so keep edits append-only.

bool raw_epsilon_window(double est, double deadline) {
  return est > deadline + 1e-9;  // line 6: raw epsilon literal
}

bool raw_float_equality(double x) {
  return x == 1.0;  // line 10: == against a float literal
}

constexpr double kEps = 1e-9;  // declaration alone is legal...

bool named_epsilon_compare(double a, double b) {
  return a > b + kEps;  // line 16: ...but comparing through it is not
}

bool abs_window(double a, double b) {
  return __builtin_fabs(a - b) < 1e-6;  // line 20: raw epsilon literal
}
