// Known-good fixture for rtdls-lock-discipline: guard types (classes
// holding a mutex reference), ascending acquisition order, and scope-based
// release must all pass clean.

/// A project guard type: holds a reference, so its internal lock/unlock
/// calls are the guard discipline, not a violation of it.
class DeadlineGuard {
 public:
  explicit DeadlineGuard(std::timed_mutex& mutex) : guarded_mutex_(mutex) {
    guarded_mutex_.lock();
  }
  ~DeadlineGuard() { guarded_mutex_.unlock(); }

 private:
  std::timed_mutex& guarded_mutex_;
};

class GoodService {
 public:
  void ascending_order() {
    std::lock_guard<std::mutex> first(intake_mutex);
    std::lock_guard<std::mutex> second(worker_mutex);
  }

  // The inner-scope guard is released at its closing brace, so the
  // follow-up acquisition of the lower level is sequential, not nested.
  void scoped_release() {
    {
      std::lock_guard<std::mutex> inner(worker_mutex);
    }
    std::lock_guard<std::mutex> outer(intake_mutex);
  }

  void through_guard_type() { DeadlineGuard guard(slow_mutex); }

 private:
  std::mutex intake_mutex RTDLS_LOCK_LEVEL(10);
  std::mutex worker_mutex RTDLS_LOCK_LEVEL(30);
  std::timed_mutex slow_mutex;
};
