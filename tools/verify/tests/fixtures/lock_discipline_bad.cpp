// Known-bad fixture for rtdls-lock-discipline. Never compiled, only
// analyzed; the harness asserts line numbers, so keep edits append-only.

class BadDaemon {
 public:
  void naked_calls() {
    state_mutex.lock();    // line 7: naked lock()
    state_mutex.unlock();  // line 8: naked unlock()
  }

  // Declared order is state (20) before pool (40); taking pool first and
  // then state inverts it.
  void inverted_order() {
    std::lock_guard<std::mutex> pool_guard(pool_mutex);
    std::lock_guard<std::mutex> state_guard(state_mutex);  // line 15: inversion
  }

 private:
  std::mutex state_mutex RTDLS_LOCK_LEVEL(20);
  std::mutex pool_mutex RTDLS_LOCK_LEVEL(40);
};
