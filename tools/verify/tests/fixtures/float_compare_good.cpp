// Known-good fixture for rtdls-no-raw-float-compare: anchored fp::
// comparators, integer comparisons, template brackets, and large float
// constants must all pass clean. (Fixtures are analyzed, never compiled,
// so the fp:: helpers need no declarations here.)

bool anchored_deadline(double est, double deadline) {
  return rtdls::fp::after(est, deadline);
}

bool deliberate_sentinel(double deadline) {
  return rtdls::fp::exact_eq(deadline, 0.0);
}

bool integer_equality(int a) { return a == 1; }

bool template_brackets(const std::vector<double>& v, unsigned long n) {
  return sizeof(v) > n;  // > is a real comparison; <...> above is not
}

bool large_constant(double load) {
  return load > 0.5;  // magnitudes above 1e-5 are not epsilon literals
}

bool qualified_tolerance(double a, double b) {
  return rtdls::fp::near(a, b, rtdls::fp::kTimeTolerance);
}
