#include "lexer.hpp"

#include <cctype>
#include <cstdlib>

namespace rtdls::verify {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Longest-match punctuators we care to keep distinct. Everything else is
// emitted as a single character.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "...", "->*", "<=>", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "++",  "--", "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  ".*",
};

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1, col = 1;

  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n && i < src.size(); ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  while (i < src.size()) {
    const char c = src[i];

    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }

    // Comments.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') advance(1);
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      advance(2);
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) advance(1);
      advance(2);
      continue;
    }

    // Preprocessor directive: consume the logical line (with \ continuations).
    if (c == '#' && (out.empty() || col == 1 ||
                     (i > 0 && (src[i - 1] == '\n' || std::isspace(static_cast<unsigned char>(src[i - 1])))))) {
      // Only treat as a directive at (possibly indented) line start.
      bool at_line_start = true;
      for (std::size_t k = i; k > 0; --k) {
        const char p = src[k - 1];
        if (p == '\n') break;
        if (p != ' ' && p != '\t') {
          at_line_start = false;
          break;
        }
      }
      if (at_line_start) {
        while (i < src.size()) {
          if (src[i] == '\\' && i + 1 < src.size() && src[i + 1] == '\n') {
            advance(2);
            continue;
          }
          if (src[i] == '\n') break;
          advance(1);
        }
        continue;
      }
    }

    // Raw string literal.
    if (c == 'R' && i + 1 < src.size() && src[i + 1] == '"') {
      const int tline = line, tcol = col;
      advance(2);
      std::string delim;
      while (i < src.size() && src[i] != '(') {
        delim += src[i];
        advance(1);
      }
      advance(1);  // '('
      const std::string closer = ")" + delim + "\"";
      while (i < src.size() && src.substr(i, closer.size()) != closer) advance(1);
      advance(closer.size());
      out.push_back({TokenKind::kString, "R\"...\"", tline, tcol, false, 0.0});
      continue;
    }

    // String / char literal.
    if (c == '"' || c == '\'') {
      const int tline = line, tcol = col;
      const char quote = c;
      advance(1);
      while (i < src.size() && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < src.size()) advance(1);
        advance(1);
      }
      advance(1);
      out.push_back({TokenKind::kString, quote == '"' ? "\"...\"" : "'...'", tline, tcol,
                     false, 0.0});
      continue;
    }

    // Numeric literal (also .5-style floats).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() && std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      const int tline = line, tcol = col;
      std::string text;
      const bool hex = c == '0' && i + 1 < src.size() && (src[i + 1] == 'x' || src[i + 1] == 'X');
      while (i < src.size()) {
        const char d = src[i];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '.' || d == '\'') {
          text += d;
          advance(1);
          continue;
        }
        // Exponent sign: 1e-9, 0x1p+3.
        if ((d == '+' || d == '-') && !text.empty()) {
          const char prev = text.back();
          const bool exp = !hex ? (prev == 'e' || prev == 'E') : (prev == 'p' || prev == 'P');
          if (exp) {
            text += d;
            advance(1);
            continue;
          }
        }
        break;
      }
      Token token{TokenKind::kNumber, text, tline, tcol, false, 0.0};
      std::string clean;
      for (char d : text) {
        if (d != '\'') clean += d;
      }
      if (!hex) {
        token.is_float = clean.find('.') != std::string::npos ||
                         clean.find('e') != std::string::npos ||
                         clean.find('E') != std::string::npos;
        // Suffix-only floats (1f) are rare enough to ignore; suffixes on a
        // dotted/exponent literal are already covered above.
        token.value = std::strtod(clean.c_str(), nullptr);
      } else {
        token.value = static_cast<double>(std::strtoull(clean.c_str(), nullptr, 16));
      }
      out.push_back(std::move(token));
      continue;
    }

    // Identifier / keyword.
    if (ident_start(c)) {
      const int tline = line, tcol = col;
      std::string text;
      while (i < src.size() && ident_char(src[i])) {
        text += src[i];
        advance(1);
      }
      out.push_back({TokenKind::kIdentifier, std::move(text), tline, tcol, false, 0.0});
      continue;
    }

    // Punctuator, longest match first.
    {
      const int tline = line, tcol = col;
      std::string text(1, c);
      for (std::string_view p : kPuncts) {
        if (src.substr(i, p.size()) == p) {
          text = std::string(p);
          break;
        }
      }
      advance(text.size());
      out.push_back({TokenKind::kPunct, std::move(text), tline, tcol, false, 0.0});
    }
  }
  return out;
}

bool is_comparison_punct(const Token& token) {
  if (token.kind != TokenKind::kPunct) return false;
  return token.text == "<" || token.text == ">" || token.text == "<=" ||
         token.text == ">=" || token.text == "==" || token.text == "!=";
}

bool is_epsilon_name(std::string_view text) {
  // Split into segments at '_' and lower-to-upper camelCase boundaries,
  // then look for an exact segment match.
  std::vector<std::string> segments;
  std::string current;
  char prev = '\0';
  for (char c : text) {
    if (c == '_') {
      if (!current.empty()) segments.push_back(current);
      current.clear();
    } else {
      if (std::isupper(static_cast<unsigned char>(c)) &&
          std::islower(static_cast<unsigned char>(prev)) && !current.empty()) {
        segments.push_back(current);
        current.clear();
      }
      current += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    prev = c;
  }
  if (!current.empty()) segments.push_back(current);
  for (const std::string& segment : segments) {
    if (segment == "eps" || segment == "epsilon" || segment == "tol" ||
        segment == "tolerance" || segment == "keps" || segment == "kepsilon" ||
        segment == "ktol" || segment == "ktolerance") {
      return true;
    }
  }
  return false;
}

}  // namespace rtdls::verify
