// rtdls_tidy: the project's static-analysis driver.
//
// Runs the three rtdls-verify checks (checks.hpp) over a set of C++
// sources and prints clang-tidy-compatible diagnostics:
//
//   $ rtdls_tidy src/
//   src/sched/opr_rule.cpp:58:37: warning: raw epsilon literal 1e-9 in a
//   comparison; ... [rtdls-no-raw-float-compare]
//
// Exit status is 1 when any diagnostic fired (warnings-as-errors is the
// only mode: CI gates on it, and there is deliberately no suppression
// syntax - a finding in src/ is fixed, not silenced). The sibling
// clang-tidy plugin (plugin/RtdlsTidyModule.cpp) exposes the same checks
// inside real clang-tidy for toolchains that ship Clang dev headers; this
// driver is the dependency-free engine that runs everywhere the project
// builds, directly over the source tree (or the file list of a
// compile_commands.json via --compdb).
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "checks.hpp"

namespace {

namespace fs = std::filesystem;
using rtdls::verify::Analyzer;
using rtdls::verify::Diagnostic;

void usage() {
  std::cerr <<
      "usage: rtdls_tidy [options] <file-or-dir>...\n"
      "\n"
      "options:\n"
      "  --checks=a,b,c     comma-separated check names (default: all)\n"
      "  --list-checks      print the known checks and exit\n"
      "  --compdb=FILE      add every file listed in a compile_commands.json\n"
      "  --fp-allowlist=S   comma-separated path substrings exempt from\n"
      "                     rtdls-no-raw-float-compare (default: util/fp)\n"
      "  --quiet            print only the summary line\n";
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

bool cpp_source(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h" ||
         ext == ".cxx" || ext == ".hxx";
}

/// Pulls the "file" entries out of a compile_commands.json without a JSON
/// dependency: the format is stable enough that scanning for the "file"
/// key is exact in practice.
std::vector<std::string> compdb_files(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> out;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t key = line.find("\"file\"");
    if (key == std::string::npos) continue;
    const std::size_t open = line.find('"', key + 6 + 1);
    if (open == std::string::npos) continue;
    const std::size_t close = line.find('"', open + 1);
    if (close == std::string::npos) continue;
    out.push_back(line.substr(open + 1, close - open - 1));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::set<std::string> checks;
  std::vector<std::string> inputs;
  std::vector<std::string> fp_allowlist = {"util/fp"};
  bool quiet = false;

  const std::set<std::string> known_checks = {
      rtdls::verify::kCheckFloatCompare,
      rtdls::verify::kCheckHotAlloc,
      rtdls::verify::kCheckLockDiscipline,
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-checks") {
      for (const std::string& check : known_checks) std::cout << check << "\n";
      return 0;
    }
    if (arg.rfind("--checks=", 0) == 0) {
      for (const std::string& check : split_commas(arg.substr(9))) {
        if (!known_checks.count(check)) {
          std::cerr << "rtdls_tidy: unknown check '" << check << "'\n";
          return 2;
        }
        checks.insert(check);
      }
      continue;
    }
    if (arg.rfind("--compdb=", 0) == 0) {
      for (const std::string& file : compdb_files(arg.substr(9))) inputs.push_back(file);
      continue;
    }
    if (arg.rfind("--fp-allowlist=", 0) == 0) {
      fp_allowlist = split_commas(arg.substr(15));
      continue;
    }
    if (arg == "--quiet") {
      quiet = true;
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "rtdls_tidy: unknown option '" << arg << "'\n";
      usage();
      return 2;
    }
    inputs.push_back(arg);
  }

  if (inputs.empty()) {
    usage();
    return 2;
  }

  Analyzer analyzer;
  analyzer.set_fp_allowlist(fp_allowlist);
  std::size_t file_count = 0;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      std::vector<std::string> found;
      for (const auto& entry : fs::recursive_directory_iterator(input)) {
        if (entry.is_regular_file() && cpp_source(entry.path())) {
          found.push_back(entry.path().string());
        }
      }
      std::sort(found.begin(), found.end());
      for (const std::string& path : found) {
        if (analyzer.add_file_from_disk(path)) ++file_count;
      }
      continue;
    }
    if (!analyzer.add_file_from_disk(input)) {
      std::cerr << "rtdls_tidy: cannot read '" << input << "'\n";
      return 2;
    }
    ++file_count;
  }

  const std::vector<Diagnostic> diagnostics = analyzer.run(checks);
  if (!quiet) {
    for (const Diagnostic& diagnostic : diagnostics) {
      std::cout << diagnostic.render() << "\n";
    }
  }
  std::cout << diagnostics.size() << " warning" << (diagnostics.size() == 1 ? "" : "s")
            << " generated over " << file_count << " file"
            << (file_count == 1 ? "" : "s") << ".\n";
  return diagnostics.empty() ? 0 : 1;
}
