#include "checks.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <tuple>

namespace rtdls::verify {

namespace {

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}
bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",    "switch",   "catch",  "return",
      "sizeof", "alignof", "decltype", "noexcept", "static_assert",
      "alignas", "throw",
  };
  return kw;
}

/// Containers and strings that own heap storage; declaring one locally (or
/// constructing a temporary) inside a hot path is an allocation.
const std::set<std::string>& owning_types() {
  static const std::set<std::string> types = {
      "vector", "string", "basic_string", "deque", "list", "forward_list",
      "map", "set", "multimap", "multiset", "unordered_map", "unordered_set",
      "unordered_multimap", "unordered_multiset", "function", "stringstream",
      "ostringstream", "istringstream",
  };
  return types;
}

const std::set<std::string>& growth_methods() {
  static const std::set<std::string> methods = {
      "push_back", "emplace_back", "resize", "reserve", "insert", "emplace",
      "append",    "assign",       "push_front", "emplace_front",
  };
  return methods;
}

const std::set<std::string>& mutex_types() {
  static const std::set<std::string> types = {
      "mutex", "timed_mutex", "recursive_mutex", "recursive_timed_mutex",
      "shared_mutex", "shared_timed_mutex",
  };
  return types;
}

const std::set<std::string>& std_guard_types() {
  static const std::set<std::string> types = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
  };
  return types;
}

/// Given tokens[i] == "<" directly after an identifier, tries to match a
/// template-argument list: identifiers, ::, commas, nested <>, *, &,
/// numbers, and a few punctuation tokens. Returns the index of the closing
/// ">" or 0 when this does not look like template syntax.
std::size_t match_template_args(const std::vector<Token>& tokens, std::size_t i) {
  int depth = 0;
  const std::size_t limit = std::min(tokens.size(), i + 64);
  for (std::size_t j = i; j < limit; ++j) {
    const Token& t = tokens[j];
    if (is_punct(t, "<")) {
      ++depth;
    } else if (is_punct(t, ">")) {
      if (--depth == 0) return j;
    } else if (is_punct(t, ">>")) {
      depth -= 2;
      if (depth <= 0) return j;
    } else if (t.kind == TokenKind::kIdentifier || t.kind == TokenKind::kNumber ||
               is_punct(t, "::") || is_punct(t, ",") || is_punct(t, "*") ||
               is_punct(t, "&") || is_punct(t, "[") || is_punct(t, "]")) {
      // plausible template-argument content
    } else {
      return 0;
    }
  }
  return 0;
}

/// Finds the matching close brace/paren for tokens[open] (an "(" or "{").
std::size_t match_balanced(const std::vector<Token>& tokens, std::size_t open) {
  const std::string& open_text = tokens[open].text;
  const std::string close_text = open_text == "(" ? ")" : "}";
  int depth = 0;
  for (std::size_t j = open; j < tokens.size(); ++j) {
    if (is_punct(tokens[j], open_text)) ++depth;
    if (is_punct(tokens[j], close_text) && --depth == 0) return j;
  }
  return tokens.size() ? tokens.size() - 1 : 0;
}

}  // namespace

std::string Diagnostic::render() const {
  std::ostringstream out;
  out << file << ":" << line << ":" << col << ": warning: " << message << " ["
      << check << "]";
  return out.str();
}

void Analyzer::add_file(const std::string& path, const std::string& content) {
  files_.push_back({path, lex(content)});
  symbols_collected_ = false;
}

bool Analyzer::add_file_from_disk(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  add_file(path, buffer.str());
  return true;
}

void Analyzer::set_fp_allowlist(std::vector<std::string> substrings) {
  fp_allowlist_ = std::move(substrings);
}

bool Analyzer::fp_allowlisted(const std::string& path) const {
  for (const std::string& s : fp_allowlist_) {
    if (path.find(s) != std::string::npos) return true;
  }
  return false;
}

// --- pass 1: symbols --------------------------------------------------------

void Analyzer::collect_symbols() {
  if (symbols_collected_) return;
  mutexes_.clear();
  value_mutex_names_.clear();
  reference_mutex_names_.clear();
  mutex_levels_.clear();
  guard_classes_.clear();
  functions_.clear();
  hot_declared_names_.clear();

  for (std::size_t fi = 0; fi < files_.size(); ++fi) {
    const File& file = files_[fi];
    const std::vector<Token>& tokens = file.tokens;

    // Class-scope stack: (class name, brace depth at which its body opened).
    std::vector<std::pair<std::string, int>> class_stack;
    int depth = 0;
    // Start of the current declaration (token after the last ; { } or
    // access-specifier colon) - used to look for RTDLS_HOT and class heads.
    std::size_t decl_start = 0;
    // Pending class head: saw class/struct NAME, waiting for '{' or ';'.
    std::string pending_class;

    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];

      if ((is_ident(t, "class") || is_ident(t, "struct")) &&
          (i == 0 || !is_ident(tokens[i - 1], "enum"))) {
        if (i + 1 < tokens.size() && tokens[i + 1].kind == TokenKind::kIdentifier) {
          pending_class = tokens[i + 1].text;
        }
        continue;
      }

      if (is_punct(t, "{")) {
        if (!pending_class.empty()) {
          class_stack.emplace_back(pending_class, depth);
          pending_class.clear();
        }
        ++depth;
        decl_start = i + 1;
        continue;
      }
      if (is_punct(t, "}")) {
        --depth;
        while (!class_stack.empty() && class_stack.back().second >= depth) {
          class_stack.pop_back();
        }
        decl_start = i + 1;
        continue;
      }
      if (is_punct(t, ";")) {
        pending_class.clear();  // forward declaration
        decl_start = i + 1;
        continue;
      }
      if (is_punct(t, ":") && i > 0 &&
          (is_ident(tokens[i - 1], "public") || is_ident(tokens[i - 1], "private") ||
           is_ident(tokens[i - 1], "protected"))) {
        decl_start = i + 1;
        continue;
      }

      // Mutex member declaration: std :: <mutex-type> [&] NAME
      //   [RTDLS_LOCK_LEVEL ( N )] ;
      if (is_ident(t, "std") && i + 2 < tokens.size() && is_punct(tokens[i + 1], "::") &&
          tokens[i + 2].kind == TokenKind::kIdentifier &&
          mutex_types().count(tokens[i + 2].text)) {
        std::size_t j = i + 3;
        bool is_ref = false;
        if (j < tokens.size() && is_punct(tokens[j], "&")) {
          is_ref = true;
          ++j;
        }
        if (j < tokens.size() && tokens[j].kind == TokenKind::kIdentifier) {
          MutexDecl decl;
          decl.name = tokens[j].text;
          decl.enclosing_class = class_stack.empty() ? "" : class_stack.back().first;
          decl.file = file.path;
          decl.line = tokens[j].line;
          decl.is_reference = is_ref;
          std::size_t k = j + 1;
          if (k + 3 < tokens.size() && is_ident(tokens[k], "RTDLS_LOCK_LEVEL") &&
              is_punct(tokens[k + 1], "(") && tokens[k + 2].kind == TokenKind::kNumber) {
            decl.level = static_cast<int>(tokens[k + 2].value);
            k += 4;
          }
          if (k < tokens.size() && is_punct(tokens[k], ";")) {
            mutexes_.push_back(decl);
            if (is_ref) {
              reference_mutex_names_.insert(decl.name);
              if (!decl.enclosing_class.empty()) guard_classes_.insert(decl.enclosing_class);
            } else {
              value_mutex_names_.insert(decl.name);
              if (decl.level >= 0) {
                // Uniqueness is checked in check_lock_levels_unique; keep
                // the first declaration's level for resolution.
                mutex_levels_.emplace(decl.name, decl.level);
              }
            }
          }
        }
      }

      // Function definition or hot prototype: NAME ( ... ) [trailer] { / ;
      if (t.kind == TokenKind::kIdentifier && i + 1 < tokens.size() &&
          is_punct(tokens[i + 1], "(") && !control_keywords().count(t.text) &&
          t.text != "RTDLS_LOCK_LEVEL") {
        const std::size_t close = match_balanced(tokens, i + 1);
        if (close + 1 >= tokens.size()) continue;

        // Walk the trailer: const/noexcept/override/final, trailing return,
        // constructor init list - until the body '{', a ';', or something
        // that rules out a function. In an init list, a '{' directly after
        // an identifier is a member brace-initializer, anything else is
        // the body.
        std::size_t j = close + 1;
        bool is_definition = false, is_declaration = false, bail = false;
        bool in_init_list = false;
        while (j < tokens.size() && !bail) {
          const Token& tr = tokens[j];
          if (is_punct(tr, ";")) {
            is_declaration = true;
            break;
          }
          if (is_punct(tr, "{")) {
            if (in_init_list && tokens[j - 1].kind == TokenKind::kIdentifier) {
              j = match_balanced(tokens, j) + 1;
              continue;
            }
            is_definition = true;
            break;
          }
          if (is_ident(tr, "const") || is_ident(tr, "override") || is_ident(tr, "final")) {
            ++j;
            continue;
          }
          if (is_ident(tr, "noexcept")) {
            ++j;
            if (j < tokens.size() && is_punct(tokens[j], "(")) {
              j = match_balanced(tokens, j) + 1;
            }
            continue;
          }
          if (is_punct(tr, "->")) {  // trailing return type
            ++j;
            while (j < tokens.size() && !is_punct(tokens[j], "{") &&
                   !is_punct(tokens[j], ";")) {
              if (is_punct(tokens[j], "<")) {
                const std::size_t c = match_template_args(tokens, j);
                if (c != 0) {
                  j = c + 1;
                  continue;
                }
              }
              ++j;
            }
            continue;
          }
          if (is_punct(tr, ":")) {
            in_init_list = true;
            ++j;
            continue;
          }
          if (in_init_list) {
            if (is_punct(tr, "(")) {
              j = match_balanced(tokens, j) + 1;
              continue;
            }
            if (tr.kind == TokenKind::kIdentifier || is_punct(tr, ",") ||
                is_punct(tr, "::") || is_punct(tr, "<") || is_punct(tr, ">")) {
              ++j;
              continue;
            }
          }
          bail = true;
        }
        if (bail || (!is_definition && !is_declaration)) continue;

        bool hot = false;
        for (std::size_t k = decl_start; k < i; ++k) {
          if (is_ident(tokens[k], "RTDLS_HOT")) hot = true;
        }

        std::string qualified = t.text;
        if (i >= 2 && is_punct(tokens[i - 1], "::") &&
            tokens[i - 2].kind == TokenKind::kIdentifier) {
          qualified = tokens[i - 2].text + "::" + t.text;
        } else if (!class_stack.empty()) {
          qualified = class_stack.back().first + "::" + t.text;
        }

        if (is_declaration) {
          if (hot) hot_declared_names_.insert(t.text);
          continue;
        }

        // Definition: record it and skip the body for the outer scan (the
        // body is re-scanned by the checks; nested lambdas stay inside it).
        FunctionDef fn;
        fn.name = t.text;
        fn.qualified = qualified;
        fn.file_index = fi;
        fn.body_begin = j;
        fn.body_end = match_balanced(tokens, j);
        fn.line = t.line;
        fn.hot = hot;
        if (hot) fn.hot_via = qualified;
        functions_.push_back(fn);
        // Skip the body wholesale: its braces are balanced, so the outer
        // depth is unchanged, and member declarations never live in bodies.
        i = fn.body_end;
        decl_start = i + 1;
      }
    }
  }
  propagate_hot();
  symbols_collected_ = true;
}

void Analyzer::propagate_hot() {
  // Seed: annotated definitions, plus definitions whose name carries a hot
  // prototype elsewhere (annotation in the header, definition in the .cpp).
  for (FunctionDef& fn : functions_) {
    if (!fn.hot && hot_declared_names_.count(fn.name)) {
      fn.hot = true;
      fn.hot_via = fn.qualified;
    }
  }

  // Transitive closure over calls resolvable by bare name inside the file
  // set. Names are approximate (no overload resolution), which errs on the
  // strict side: a hot-named callee makes every same-named definition hot.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionDef& caller : functions_) {
      if (!caller.hot) continue;
      const std::vector<Token>& tokens = files_[caller.file_index].tokens;
      for (std::size_t i = caller.body_begin; i < caller.body_end; ++i) {
        const Token& t = tokens[i];
        if (t.kind != TokenKind::kIdentifier || !is_punct(tokens[i + 1], "(")) continue;
        if (control_keywords().count(t.text)) continue;
        for (FunctionDef& callee : functions_) {
          if (callee.hot || callee.name != t.text) continue;
          callee.hot = true;
          callee.hot_via = caller.hot_via.empty() ? caller.qualified : caller.hot_via;
          changed = true;
        }
      }
    }
  }
}

// --- check: rtdls-no-raw-float-compare --------------------------------------

void Analyzer::check_float_compare(const File& file, std::vector<Diagnostic>& out) const {
  if (fp_allowlisted(file.path)) return;
  const std::vector<Token>& tokens = file.tokens;

  std::size_t stmt_begin = 0;
  for (std::size_t i = 0; i <= tokens.size(); ++i) {
    const bool boundary = i == tokens.size() || is_punct(tokens[i], ";") ||
                          is_punct(tokens[i], "{") || is_punct(tokens[i], "}");
    if (!boundary) continue;

    // Analyze the statement span [stmt_begin, i).
    bool has_comparison = false;
    bool has_abs = false;
    for (std::size_t j = stmt_begin; j < i; ++j) {
      const Token& t = tokens[j];
      if (t.kind == TokenKind::kIdentifier && (t.text == "fabs" || t.text == "abs")) {
        has_abs = true;
      }
      if (!is_comparison_punct(t)) continue;
      if (t.text == "<" && j > stmt_begin &&
          tokens[j - 1].kind == TokenKind::kIdentifier) {
        const std::size_t close = match_template_args(tokens, j);
        if (close != 0 && close < i) {
          j = close;  // template-argument list, not a comparison
          continue;
        }
      }
      has_comparison = true;
    }

    for (std::size_t j = stmt_begin; j < i; ++j) {
      const Token& t = tokens[j];

      if ((is_punct(t, "==") || is_punct(t, "!="))) {
        const Token* prev = j > stmt_begin ? &tokens[j - 1] : nullptr;
        const Token* next = j + 1 < i ? &tokens[j + 1] : nullptr;
        const bool float_operand =
            (prev && prev->kind == TokenKind::kNumber && prev->is_float) ||
            (next && next->kind == TokenKind::kNumber && next->is_float);
        if (float_operand) {
          out.push_back({file.path, t.line, t.col,
                         "raw " + t.text +
                             " against a float literal; use fp::exact_eq / "
                             "fp::exact_ne (util/fp.hpp) to mark bit-exact "
                             "comparison as intended",
                         kCheckFloatCompare});
        }
      }

      if (t.kind == TokenKind::kNumber && t.is_float && t.value > 0.0 &&
          t.value <= 1e-5 && (has_comparison || has_abs)) {
        std::ostringstream msg;
        msg << "raw epsilon literal " << t.text
            << " in a comparison; anchor the tolerance in util/fp.hpp and "
               "compare through the fp:: helpers";
        out.push_back({file.path, t.line, t.col, msg.str(), kCheckFloatCompare});
      }

      if (t.kind == TokenKind::kIdentifier && has_comparison && is_epsilon_name(t.text)) {
        const bool fp_qualified = j >= stmt_begin + 2 && is_punct(tokens[j - 1], "::") &&
                                  is_ident(tokens[j - 2], "fp");
        if (!fp_qualified) {
          out.push_back({file.path, t.line, t.col,
                         "epsilon-named constant '" + t.text +
                             "' used in a comparison; tolerances live in "
                             "util/fp.hpp and comparisons go through the "
                             "fp:: helpers",
                         kCheckFloatCompare});
        }
      }
    }
    stmt_begin = i + 1;
  }
}

// --- check: rtdls-hot-path-alloc --------------------------------------------

void Analyzer::check_hot_alloc(const FunctionDef& fn, std::vector<Diagnostic>& out) const {
  const std::vector<Token>& tokens = files_[fn.file_index].tokens;
  const std::string where =
      fn.qualified + (fn.hot_via == fn.qualified || fn.hot_via.empty()
                          ? " (annotated RTDLS_HOT)"
                          : " (reachable from RTDLS_HOT '" + fn.hot_via + "')");

  std::set<std::string> local_owners;  // locally declared owning containers

  for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier) continue;

    if (t.text == "new" || t.text == "delete") {
      out.push_back({files_[fn.file_index].path, t.line, t.col,
                     "operator " + t.text + " in hot path " + where, kCheckHotAlloc});
      continue;
    }
    if ((t.text == "malloc" || t.text == "calloc" || t.text == "realloc" ||
         t.text == "aligned_alloc" || t.text == "strdup") &&
        i + 1 < fn.body_end && is_punct(tokens[i + 1], "(")) {
      out.push_back({files_[fn.file_index].path, t.line, t.col,
                     t.text + "() in hot path " + where, kCheckHotAlloc});
      continue;
    }
    if ((t.text == "make_unique" || t.text == "make_shared" || t.text == "to_string") &&
        i + 1 < fn.body_end &&
        (is_punct(tokens[i + 1], "(") || is_punct(tokens[i + 1], "<"))) {
      out.push_back({files_[fn.file_index].path, t.line, t.col,
                     t.text + " in hot path " + where, kCheckHotAlloc});
      continue;
    }

    // std::<owning-type> ... : local declaration or temporary construction.
    if (t.text == "std" && i + 2 < fn.body_end && is_punct(tokens[i + 1], "::") &&
        tokens[i + 2].kind == TokenKind::kIdentifier &&
        owning_types().count(tokens[i + 2].text)) {
      const Token& type_token = tokens[i + 2];
      std::size_t j = i + 3;
      if (j < fn.body_end && is_punct(tokens[j], "<")) {
        const std::size_t close = match_template_args(tokens, j);
        if (close != 0) j = close + 1;
      }
      const bool reference_or_pointer =
          j < fn.body_end && (is_punct(tokens[j], "&") || is_punct(tokens[j], "*"));
      if (!reference_or_pointer) {
        out.push_back({files_[fn.file_index].path, type_token.line, type_token.col,
                       "local std::" + type_token.text + " (owning storage) in hot path " +
                           where,
                       kCheckHotAlloc});
        if (j < fn.body_end && tokens[j].kind == TokenKind::kIdentifier) {
          local_owners.insert(tokens[j].text);
        }
      }
      i = j;
      continue;
    }

    // Growth on a locally declared owner (member scratch stays legal).
    if (growth_methods().count(t.text) && i >= fn.body_begin + 3 &&
        is_punct(tokens[i - 1], ".") && tokens[i - 2].kind == TokenKind::kIdentifier &&
        local_owners.count(tokens[i - 2].text) && i + 1 < fn.body_end &&
        is_punct(tokens[i + 1], "(")) {
      out.push_back({files_[fn.file_index].path, t.line, t.col,
                     tokens[i - 2].text + "." + t.text + "() grows a local container in "
                         "hot path " + where,
                     kCheckHotAlloc});
    }
  }
}

// --- check: rtdls-lock-discipline -------------------------------------------

void Analyzer::check_lock_levels_unique(std::vector<Diagnostic>& out) const {
  std::map<std::string, const MutexDecl*> seen;
  for (const MutexDecl& decl : mutexes_) {
    if (decl.is_reference || decl.level < 0) continue;
    auto [it, inserted] = seen.emplace(decl.name, &decl);
    if (!inserted && it->second->level != decl.level) {
      out.push_back({decl.file, decl.line, 1,
                     "leveled mutex member name '" + decl.name +
                         "' is not globally unique (also declared in " +
                         it->second->file + "); rename so lock sites resolve "
                         "unambiguously",
                     kCheckLockDiscipline});
    }
  }
}

void Analyzer::check_lock_discipline(const File& file, std::vector<Diagnostic>& out) const {
  const std::vector<Token>& tokens = file.tokens;

  static const std::set<std::string> lock_methods = {
      "lock", "unlock", "try_lock", "try_lock_for", "try_lock_until",
      "lock_shared", "unlock_shared",
  };

  // Naked lock calls: NAME . method ( where NAME is a value-typed mutex
  // member. Names that are also declared as reference members somewhere
  // (guard internals) are exempt - the guard owns the discipline.
  for (std::size_t i = 2; i + 1 < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier || !lock_methods.count(t.text)) continue;
    if (!is_punct(tokens[i + 1], "(")) continue;
    if (!is_punct(tokens[i - 1], ".")) continue;
    const Token& object = tokens[i - 2];
    if (object.kind != TokenKind::kIdentifier) continue;
    if (!value_mutex_names_.count(object.text)) continue;
    if (reference_mutex_names_.count(object.text)) continue;
    out.push_back({file.path, t.line, t.col,
                   "naked " + t.text + "() on mutex member '" + object.text +
                       "'; acquire through a guard (std::lock_guard, "
                       "std::unique_lock, or a project guard type)",
                   kCheckLockDiscipline});
  }

  // Lock-order tracking per function body.
  for (const FunctionDef& fn : functions_) {
    if (&files_[fn.file_index] != &file) continue;

    struct Held {
      std::string name;
      int level;
      int depth;
      int line;
    };
    std::vector<Held> held;
    int depth = 0;

    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      const Token& t = tokens[i];
      if (is_punct(t, "{")) {
        ++depth;
        continue;
      }
      if (is_punct(t, "}")) {
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
        continue;
      }

      // Guard construction:
      //   std :: guard_type [<...>] VAR ( args )
      //   GuardClass VAR ( args )
      std::size_t args_open = 0;
      if (is_ident(t, "std") && i + 2 < fn.body_end && is_punct(tokens[i + 1], "::") &&
          tokens[i + 2].kind == TokenKind::kIdentifier &&
          std_guard_types().count(tokens[i + 2].text)) {
        std::size_t j = i + 3;
        if (j < fn.body_end && is_punct(tokens[j], "<")) {
          const std::size_t close = match_template_args(tokens, j);
          if (close != 0) j = close + 1;
        }
        if (j + 1 < fn.body_end && tokens[j].kind == TokenKind::kIdentifier &&
            is_punct(tokens[j + 1], "(")) {
          args_open = j + 1;
        }
      } else if (t.kind == TokenKind::kIdentifier && guard_classes_.count(t.text) &&
                 i + 2 < fn.body_end && tokens[i + 1].kind == TokenKind::kIdentifier &&
                 is_punct(tokens[i + 2], "(")) {
        args_open = i + 2;
      }
      if (args_open == 0) continue;

      const std::size_t args_close = match_balanced(tokens, args_open);
      for (std::size_t j = args_open + 1; j < args_close; ++j) {
        const Token& arg = tokens[j];
        if (arg.kind != TokenKind::kIdentifier) continue;
        auto level_it = mutex_levels_.find(arg.text);
        if (level_it == mutex_levels_.end()) continue;
        const int level = level_it->second;
        for (const Held& h : held) {
          if (h.level > level) {
            std::ostringstream msg;
            msg << "lock-order inversion: acquiring '" << arg.text << "' (level "
                << level << ") while holding '" << h.name << "' (level " << h.level
                << ", acquired at line " << h.line
                << "); the declared order acquires lower RTDLS_LOCK_LEVEL first";
            out.push_back({file.path, arg.line, arg.col, msg.str(), kCheckLockDiscipline});
            break;
          }
        }
        held.push_back({arg.text, level, depth, arg.line});
      }
      i = args_close;
    }
  }
}

// --- driver -----------------------------------------------------------------

std::vector<Diagnostic> Analyzer::run(const std::set<std::string>& checks) {
  collect_symbols();
  auto enabled = [&checks](const char* name) {
    return checks.empty() || checks.count(name) != 0;
  };

  std::vector<Diagnostic> out;
  if (enabled(kCheckLockDiscipline)) check_lock_levels_unique(out);
  for (const File& file : files_) {
    if (enabled(kCheckFloatCompare)) check_float_compare(file, out);
    if (enabled(kCheckLockDiscipline)) check_lock_discipline(file, out);
  }
  if (enabled(kCheckHotAlloc)) {
    for (const FunctionDef& fn : functions_) {
      if (fn.hot) check_hot_alloc(fn, out);
    }
  }

  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.file, a.line, a.col, a.check, a.message) <
           std::tie(b.file, b.line, b.col, b.check, b.message);
  });
  return out;
}

}  // namespace rtdls::verify
