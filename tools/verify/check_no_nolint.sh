#!/bin/sh
# Suppression pragmas are not an accepted way to satisfy the static checks:
# a finding in src/ is fixed or the check is wrong (and then the check is
# fixed). Fails when any clang-tidy/rtdls suppression marker appears under
# the directories given as arguments (default: src).
set -eu
cd "$(dirname "$0")/../.."
dirs="${*:-src}"
# shellcheck disable=SC2086  # word-splitting the dir list is intended
if grep -rn --include='*.hpp' --include='*.cpp' -E 'NOLINT|rtdls-verify-(off|disable|suppress)' $dirs; then
  echo "error: suppression pragmas found (fix the finding or fix the check)" >&2
  exit 1
fi
echo "no suppression pragmas under: $dirs"
