// Minimal C++ token scanner for the rtdls-verify checks.
//
// This is not a compiler front end: it produces a flat token stream with
// line/column positions, which is exactly enough for the project-specific
// pattern checks in checks.hpp (epsilon literals in comparison statements,
// allocation constructs in RTDLS_HOT bodies, guard acquisitions against
// the declared lock order). Comments, string/char literal *contents*, and
// preprocessor directives are consumed but not tokenized; numeric literals
// carry a parsed value and a float/integer classification so the checks
// can reason about magnitudes. The clang-tidy plugin under plugin/ is the
// AST-exact implementation of the same checks for toolchains that ship
// Clang development headers; this scanner is the dependency-free engine
// that runs everywhere the project builds.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace rtdls::verify {

enum class TokenKind {
  kIdentifier,  ///< identifiers and keywords (text distinguishes them)
  kNumber,      ///< numeric literal; see Token::is_float / Token::value
  kString,      ///< string or char literal (contents dropped)
  kPunct,       ///< operator or punctuator, longest-match (e.g. "<=", "::")
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;  ///< 1-based
  int col = 0;   ///< 1-based
  bool is_float = false;  ///< kNumber: literal has a '.', exponent, or f/F/l suffix
  double value = 0.0;     ///< kNumber: parsed magnitude (0.0 when unparseable)
};

/// Tokenizes `source`. Handles //, /* */, ', ", R"( )" raw strings, digit
/// separators, and line-continuation preprocessor directives. Never throws
/// on malformed input; it simply stops classifying and moves on, which is
/// the right failure mode for a linter.
std::vector<Token> lex(std::string_view source);

/// True for punctuator tokens that compare two values: < > <= >= == !=.
bool is_comparison_punct(const Token& token);

/// True when `text` reads as an epsilon/tolerance name: some '_'- or
/// camelCase-segment equals (case-insensitively) "eps", "epsilon", "tol",
/// or "tolerance", optionally after a leading constant 'k'. "kEps",
/// "deadline_eps", "kTimeTolerance" match; "total", "epsilons_used" do not.
bool is_epsilon_name(std::string_view text);

}  // namespace rtdls::verify
