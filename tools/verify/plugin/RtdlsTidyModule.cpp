// clang-tidy plugin exposing the rtdls-verify checks on the real AST.
//
// Load with:
//   clang-tidy -load=librtdls_tidy_plugin.so \
//       -checks='rtdls-no-raw-float-compare,rtdls-hot-path-alloc,rtdls-lock-discipline' \
//       -p build <files>
//
// These are the AST-exact implementations of the checks described in
// ../checks.hpp: where the token-based engine approximates (type of ==
// operands, template brackets vs comparisons, name-based call
// resolution), the matchers here are precise. The build target is gated
// on finding Clang development headers plus the clang-tidy module
// headers, which not every distribution packages - the standalone
// rtdls_tidy driver remains the enforcement path that runs everywhere.
//
// Annotation mapping (src/util/annotations.hpp):
//   RTDLS_HOT           -> [[clang::annotate("rtdls_hot")]]
//   RTDLS_LOCK_LEVEL(n) -> __attribute__((annotate("rtdls_lock_level_<n>")))

#include <optional>
#include <string>

#include "clang-tidy/ClangTidyCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"

namespace rtdls_tidy {

using namespace clang;
using namespace clang::ast_matchers;
using clang::tidy::ClangTidyCheck;
using clang::tidy::ClangTidyContext;

namespace {

bool hasAnnotation(const Decl *decl, llvm::StringRef annotation) {
  if (!decl) return false;
  for (const auto *attr : decl->specific_attrs<AnnotateAttr>()) {
    if (attr->getAnnotation() == annotation) return true;
  }
  return false;
}

std::optional<int> lockLevel(const Decl *decl) {
  if (!decl) return std::nullopt;
  constexpr llvm::StringRef prefix = "rtdls_lock_level_";
  for (const auto *attr : decl->specific_attrs<AnnotateAttr>()) {
    llvm::StringRef text = attr->getAnnotation();
    if (text.startswith(prefix)) {
      int level = 0;
      if (!text.drop_front(prefix.size()).getAsInteger(10, level)) return level;
    }
  }
  return std::nullopt;
}

bool inFpAllowlist(const SourceManager &sm, SourceLocation loc) {
  const llvm::StringRef file = sm.getFilename(sm.getSpellingLoc(loc));
  return file.contains("util/fp");
}

AST_MATCHER(FunctionDecl, isRtdlsHot) {
  // The annotation may sit on any redeclaration (header vs definition).
  for (const FunctionDecl *redecl : Node.redecls()) {
    if (hasAnnotation(redecl, "rtdls_hot")) return true;
  }
  return false;
}

bool isOwningRecordName(llvm::StringRef name) {
  return name == "vector" || name == "basic_string" || name == "deque" ||
         name == "list" || name == "forward_list" || name == "map" ||
         name == "set" || name == "multimap" || name == "multiset" ||
         name == "unordered_map" || name == "unordered_set" ||
         name == "unordered_multimap" || name == "unordered_multiset" ||
         name == "function" || name == "basic_stringstream";
}

bool isMutexRecordName(llvm::StringRef name) {
  return name == "mutex" || name == "timed_mutex" || name == "recursive_mutex" ||
         name == "recursive_timed_mutex" || name == "shared_mutex" ||
         name == "shared_timed_mutex";
}

}  // namespace

// --- rtdls-no-raw-float-compare ---------------------------------------------

class NoRawFloatCompareCheck : public ClangTidyCheck {
 public:
  NoRawFloatCompareCheck(llvm::StringRef name, ClangTidyContext *context)
      : ClangTidyCheck(name, context) {}

  void registerMatchers(MatchFinder *finder) override {
    finder->addMatcher(
        binaryOperator(hasAnyOperatorName("==", "!="),
                       hasEitherOperand(ignoringParenImpCasts(
                           expr(hasType(realFloatingPointType())))))
            .bind("eq"),
        this);
    finder->addMatcher(
        binaryOperator(isComparisonOperator(),
                       forEachDescendant(floatLiteral().bind("lit")))
            .bind("cmp"),
        this);
  }

  void check(const MatchFinder::MatchResult &result) override {
    const SourceManager &sm = *result.SourceManager;
    if (const auto *eq = result.Nodes.getNodeAs<BinaryOperator>("eq")) {
      if (inFpAllowlist(sm, eq->getOperatorLoc())) return;
      diag(eq->getOperatorLoc(),
           "raw %0 on floating-point operands; use fp::exact_eq / fp::exact_ne "
           "(util/fp.hpp) to mark bit-exact comparison as intended")
          << eq->getOpcodeStr();
      return;
    }
    const auto *lit = result.Nodes.getNodeAs<FloatingLiteral>("lit");
    if (!lit) return;
    if (inFpAllowlist(sm, lit->getLocation())) return;
    const double value = std::abs(lit->getValueAsApproximateDouble());
    if (value > 0.0 && value <= 1e-5) {
      diag(lit->getLocation(),
           "raw epsilon literal in a comparison; anchor the tolerance in "
           "util/fp.hpp and compare through the fp:: helpers");
    }
  }
};

// --- rtdls-hot-path-alloc ---------------------------------------------------

class HotPathAllocCheck : public ClangTidyCheck {
 public:
  HotPathAllocCheck(llvm::StringRef name, ClangTidyContext *context)
      : ClangTidyCheck(name, context) {}

  void registerMatchers(MatchFinder *finder) override {
    const auto hot_fn = functionDecl(isRtdlsHot());
    finder->addMatcher(
        cxxNewExpr(hasAncestor(hot_fn.bind("fn"))).bind("new"), this);
    finder->addMatcher(
        cxxDeleteExpr(hasAncestor(hot_fn.bind("fn"))).bind("del"), this);
    finder->addMatcher(
        callExpr(callee(functionDecl(hasAnyName(
                     "malloc", "calloc", "realloc", "aligned_alloc",
                     "::std::make_unique", "::std::make_shared", "::std::to_string"))),
                 hasAncestor(hot_fn.bind("fn")))
            .bind("call"),
        this);
    // Local owning-container or string declarations: the amortized
    // scratch-reuse contract only covers *member* scratch.
    finder->addMatcher(
        varDecl(hasLocalStorage(), unless(parmVarDecl()),
                hasType(cxxRecordDecl(isInStdNamespace()).bind("record")),
                hasAncestor(hot_fn.bind("fn")))
            .bind("var"),
        this);
  }

  void check(const MatchFinder::MatchResult &result) override {
    const auto *fn = result.Nodes.getNodeAs<FunctionDecl>("fn");
    const std::string where =
        fn ? (" in RTDLS_HOT path '" + fn->getQualifiedNameAsString() + "'") : "";
    if (const auto *e = result.Nodes.getNodeAs<CXXNewExpr>("new")) {
      diag(e->getBeginLoc(), "operator new%0") << where;
    } else if (const auto *e = result.Nodes.getNodeAs<CXXDeleteExpr>("del")) {
      diag(e->getBeginLoc(), "operator delete%0") << where;
    } else if (const auto *e = result.Nodes.getNodeAs<CallExpr>("call")) {
      diag(e->getBeginLoc(), "allocating call%0") << where;
    } else if (const auto *var = result.Nodes.getNodeAs<VarDecl>("var")) {
      const auto *record = result.Nodes.getNodeAs<CXXRecordDecl>("record");
      if (!record || !isOwningRecordName(record->getName())) return;
      diag(var->getLocation(), "local std::%0 (owning storage)%1")
          << record->getName() << where;
    }
  }
};

// --- rtdls-lock-discipline --------------------------------------------------

class LockDisciplineCheck : public ClangTidyCheck {
 public:
  LockDisciplineCheck(llvm::StringRef name, ClangTidyContext *context)
      : ClangTidyCheck(name, context) {}

  void registerMatchers(MatchFinder *finder) override {
    // Naked lock()/unlock() on a mutex-typed *field*: guard types hold a
    // mutex reference, so their internal calls are not member-field
    // accesses on a mutex value and do not match.
    finder->addMatcher(
        cxxMemberCallExpr(
            callee(cxxMethodDecl(hasAnyName("lock", "unlock", "try_lock",
                                            "try_lock_for", "try_lock_until"),
                                 ofClass(cxxRecordDecl(isInStdNamespace())))),
            on(ignoringParenImpCasts(
                memberExpr(member(fieldDecl().bind("field"))).bind("member"))))
            .bind("naked"),
        this);
    // Guard constructions, visited per function in source order for the
    // level check.
    finder->addMatcher(
        functionDecl(isDefinition(), hasBody(compoundStmt())).bind("body_fn"), this);
  }

  void check(const MatchFinder::MatchResult &result) override {
    if (const auto *call = result.Nodes.getNodeAs<CXXMemberCallExpr>("naked")) {
      const auto *field = result.Nodes.getNodeAs<FieldDecl>("field");
      if (!field || field->getType()->isReferenceType()) return;
      const auto *record = field->getType()->getAsCXXRecordDecl();
      if (!record || !isMutexRecordName(record->getName())) return;
      diag(call->getBeginLoc(),
           "naked mutex call on member '%0'; acquire through a guard")
          << field->getName();
      return;
    }
    const auto *fn = result.Nodes.getNodeAs<FunctionDecl>("body_fn");
    if (fn && fn->hasBody()) checkLockOrder(fn, *result.Context);
  }

 private:
  void checkLockOrder(const FunctionDecl *fn, ASTContext &context) {
    // Collect guard constructions (any automatic variable whose type holds
    // a mutex reference, or a std guard) in source order and compare the
    // RTDLS_LOCK_LEVEL annotations of the referenced mutex fields.
    struct Visitor : RecursiveASTVisitor<Visitor> {
      LockDisciplineCheck *check = nullptr;
      std::vector<std::pair<int, const FieldDecl *>> held;

      bool VisitVarDecl(VarDecl *var) {
        if (!var->hasLocalStorage() || !var->getInit()) return true;
        const FieldDecl *field = referencedMutexField(var->getInit());
        if (!field) return true;
        const std::optional<int> level = lockLevel(field);
        if (!level) return true;
        for (const auto &[held_level, held_field] : held) {
          if (held_level > *level) {
            check->diag(var->getLocation(),
                        "lock-order inversion: acquiring '%0' (level %1) while "
                        "holding '%2' (level %3)")
                << field->getName() << *level << held_field->getName() << held_level;
            break;
          }
        }
        held.emplace_back(*level, field);
        return true;
      }

      static const FieldDecl *referencedMutexField(const Expr *init) {
        // First mutex-typed member reference anywhere in the initializer.
        struct Finder : RecursiveASTVisitor<Finder> {
          const FieldDecl *found = nullptr;
          bool VisitMemberExpr(MemberExpr *member) {
            const auto *field = dyn_cast<FieldDecl>(member->getMemberDecl());
            if (!field) return true;
            const auto *record = field->getType()->getAsCXXRecordDecl();
            if (record && isMutexRecordName(record->getName())) {
              found = field;
              return false;
            }
            return true;
          }
        };
        Finder finder;
        finder.TraverseStmt(const_cast<Expr *>(init));
        return finder.found;
      }
    };
    Visitor visitor;
    visitor.check = this;
    visitor.TraverseStmt(fn->getBody());
    (void)context;
  }
};

// --- module registration ----------------------------------------------------

class RtdlsTidyModule : public clang::tidy::ClangTidyModule {
 public:
  void addCheckFactories(clang::tidy::ClangTidyCheckFactories &factories) override {
    factories.registerCheck<NoRawFloatCompareCheck>("rtdls-no-raw-float-compare");
    factories.registerCheck<HotPathAllocCheck>("rtdls-hot-path-alloc");
    factories.registerCheck<LockDisciplineCheck>("rtdls-lock-discipline");
  }
};

static clang::tidy::ClangTidyModuleRegistry::Add<RtdlsTidyModule> X(
    "rtdls-module", "rtdls project-specific invariant checks");

}  // namespace rtdls_tidy

// Anchor the registry entry so -load keeps the module alive.
volatile int RtdlsTidyModuleAnchorSource = 0;
